#include "coterie/grid.h"

#include "coterie/properties.h"

#include <gtest/gtest.h>

namespace dcp::coterie {
namespace {

TEST(DefineGrid, MatchesPaperExamples) {
  // Figure 1: N = 14 -> 4x4 with 2 unoccupied positions.
  GridDimensions d14 = DefineGrid(14);
  EXPECT_EQ(d14.rows, 4u);
  EXPECT_EQ(d14.cols, 4u);
  EXPECT_EQ(d14.unoccupied, 2u);

  // Figure 2: N = 3 -> 2x2 with 1 unoccupied position.
  GridDimensions d3 = DefineGrid(3);
  EXPECT_EQ(d3.rows, 2u);
  EXPECT_EQ(d3.cols, 2u);
  EXPECT_EQ(d3.unoccupied, 1u);
}

TEST(DefineGrid, TableOneDimensions) {
  // Perfect and near-perfect factorizations used in Table 1.
  struct Case {
    uint32_t n, rows, cols, b;
  };
  const Case cases[] = {
      {9, 3, 3, 0},  {12, 3, 4, 0},  {16, 4, 4, 0},
      {20, 4, 5, 0}, {30, 5, 6, 0},  {5, 2, 3, 1},
      {7, 3, 3, 2},  {2, 1, 2, 0},   {1, 1, 1, 0},
  };
  for (const Case& c : cases) {
    GridDimensions d = DefineGrid(c.n);
    EXPECT_EQ(d.rows, c.rows) << "N=" << c.n;
    EXPECT_EQ(d.cols, c.cols) << "N=" << c.n;
    EXPECT_EQ(d.unoccupied, c.b) << "N=" << c.n;
  }
}

TEST(DefineGrid, InvariantsForAllSmallN) {
  for (uint32_t n = 1; n <= 200; ++n) {
    GridDimensions d = DefineGrid(n);
    EXPECT_GE(d.rows * d.cols, n);
    EXPECT_LT(d.unoccupied, d.cols) << "N=" << n;
    EXPECT_LE(d.rows > d.cols ? d.rows - d.cols : d.cols - d.rows, 1u)
        << "N=" << n;  // |m - n| <= 1.
    EXPECT_EQ(d.unoccupied, d.rows * d.cols - n);
  }
}

TEST(GridCoterie, PaperFigure1WriteQuorumExample) {
  // The paper's example: in the N = 14 grid, {1,6,3,7,11,4} is a write
  // quorum (node names are 1-based in the paper; our ids are 0-based, so
  // subtract 1: {0,5,2,6,10,3}).
  GridCoterie grid;
  NodeSet v = NodeSet::Universe(14);
  NodeSet quorum({0, 5, 2, 6, 10, 3});
  EXPECT_TRUE(grid.IsWriteQuorum(v, quorum));
  // {1,6,3,4} (0-based {0,5,2,3}) is the read-quorum part.
  EXPECT_TRUE(grid.IsReadQuorum(v, NodeSet({0, 5, 2, 3})));
  // Dropping the full column {3,7,11} -> {2,6,10} breaks the write
  // property but keeps the read property.
  NodeSet no_column({0, 5, 2, 3});
  EXPECT_FALSE(grid.IsWriteQuorum(v, no_column));
}

TEST(GridCoterie, Figure2ThreeNodeGridUnoptimized) {
  // Unoptimized: "one can see that all three nodes are needed".
  GridOptions opts;
  opts.short_column_optimization = false;
  GridCoterie grid(opts);
  NodeSet v = NodeSet::Universe(3);
  EXPECT_TRUE(grid.IsWriteQuorum(v, NodeSet({0, 1, 2})));
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({0, 1})));
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({1, 2})));
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({0, 2})));
}

TEST(GridCoterie, Figure2ThreeNodeGridOptimized) {
  // With the short-column optimization (Neuman), node 1 alone covers the
  // second column, so {0,1} and {1,2} are write quorums.
  GridCoterie grid;
  NodeSet v = NodeSet::Universe(3);
  EXPECT_TRUE(grid.IsWriteQuorum(v, NodeSet({0, 1})));
  EXPECT_TRUE(grid.IsWriteQuorum(v, NodeSet({1, 2})));
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({0, 2})));  // Col 2 uncovered.
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({1})));     // Col 1 uncovered.
}

TEST(GridCoterie, ReadQuorumNeedsEveryColumn) {
  GridCoterie grid;
  NodeSet v = NodeSet::Universe(9);  // 3x3: columns {0,3,6},{1,4,7},{2,5,8}.
  EXPECT_TRUE(grid.IsReadQuorum(v, NodeSet({0, 4, 8})));
  EXPECT_TRUE(grid.IsReadQuorum(v, NodeSet({6, 7, 2})));
  EXPECT_FALSE(grid.IsReadQuorum(v, NodeSet({0, 3, 6})));  // One column.
  EXPECT_FALSE(grid.IsReadQuorum(v, NodeSet({0, 4})));
}

TEST(GridCoterie, WriteQuorumNeedsColumnCoverPlusFullColumn) {
  GridCoterie grid;
  NodeSet v = NodeSet::Universe(9);
  EXPECT_TRUE(grid.IsWriteQuorum(v, NodeSet({0, 3, 6, 1, 2})));
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({0, 3, 6})));   // No cover.
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({0, 4, 8})));   // No column.
  // Superset of a quorum is a quorum (monotonicity).
  EXPECT_TRUE(grid.IsWriteQuorum(v, NodeSet({0, 3, 6, 1, 2, 4, 5})));
}

TEST(GridCoterie, QuorumsOverArbitraryOrderedSets) {
  // The epoch mechanism feeds arbitrary node-id sets as V; positions are
  // by rank. V = {10,20,30,40}: 2x2 grid, columns {10,30},{20,40}.
  GridCoterie grid;
  NodeSet v({10, 20, 30, 40});
  EXPECT_TRUE(grid.IsWriteQuorum(v, NodeSet({10, 30, 20})));
  EXPECT_FALSE(grid.IsWriteQuorum(v, NodeSet({10, 30})));
  EXPECT_TRUE(grid.IsReadQuorum(v, NodeSet({10, 40})));
  // Ids outside V are ignored.
  EXPECT_FALSE(grid.IsReadQuorum(v, NodeSet({10, 99})));
}

TEST(GridCoterie, QuorumFunctionRotatesForLoadSharing) {
  GridCoterie grid;
  NodeSet v = NodeSet::Universe(16);
  auto q0 = grid.WriteQuorum(v, 0);
  auto q1 = grid.WriteQuorum(v, 1);
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());
  EXPECT_NE(*q0, *q1);  // Different selectors, different quorums.
}

TEST(GridCoterie, QuorumSizesAreSqrtScale) {
  GridCoterie grid;
  // For a k x k grid: read = k, write = 2k - 1.
  for (uint32_t k : {3u, 4u, 5u}) {
    NodeSet v = NodeSet::Universe(k * k);
    auto r = grid.ReadQuorum(v, 0);
    auto w = grid.WriteQuorum(v, 0);
    ASSERT_TRUE(r.ok() && w.ok());
    EXPECT_EQ(r->Size(), k);
    EXPECT_EQ(w->Size(), 2 * k - 1);
  }
}

TEST(GridCoterie, LayoutStringShowsGrid) {
  std::string layout = GridCoterie::LayoutString(NodeSet::Universe(14));
  // 4x4 grid with 2 unoccupied slots rendered as dots.
  EXPECT_NE(layout.find("0 1 2 3"), std::string::npos);
  EXPECT_NE(layout.find("12 13 . ."), std::string::npos);
}

TEST(DefineGridColumnSafe, EliminatesSingleNodeColumns) {
  for (uint32_t n = 3; n <= 300; ++n) {
    GridDimensions d = DefineGridColumnSafe(n);
    uint32_t min_height = d.ColumnHeight(d.cols - 1);
    EXPECT_GE(min_height, d.cols > 1 ? 2u : 1u) << "N=" << n;
    EXPECT_EQ(d.rows * d.cols - d.unoccupied, n);
    EXPECT_LT(d.unoccupied, d.cols);
  }
}

TEST(DefineGridColumnSafe, MatchesPaperRuleWhenAlreadySafe) {
  for (uint32_t n : {4u, 6u, 7u, 9u, 12u, 16u, 20u, 30u}) {
    GridDimensions p = DefineGrid(n);
    GridDimensions s = DefineGridColumnSafe(n);
    EXPECT_EQ(p.rows, s.rows) << "N=" << n;
    EXPECT_EQ(p.cols, s.cols) << "N=" << n;
  }
  // The affected sizes get reshaped.
  GridDimensions s5 = DefineGridColumnSafe(5);
  EXPECT_EQ(s5.rows, 3u);
  EXPECT_EQ(s5.cols, 2u);
  GridDimensions s3 = DefineGridColumnSafe(3);
  EXPECT_EQ(s3.cols, 1u);
}

TEST(GridCoterie, ColumnSafeLayoutToleratesTheNFiveFailure) {
  GridOptions opts;
  opts.layout = GridLayout::kColumnSafe;
  GridCoterie safe(opts);
  GridCoterie paper;
  NodeSet v = NodeSet::Universe(5);
  // Paper rule: node 2 (the third column's only member) is in EVERY
  // quorum; its loss is fatal.
  NodeSet survivors({0, 1, 3, 4});
  EXPECT_FALSE(paper.IsWriteQuorum(v, survivors));
  EXPECT_FALSE(paper.IsReadQuorum(v, survivors));
  // Column-safe rule (3x2): the same survivors hold a write quorum.
  EXPECT_TRUE(safe.IsWriteQuorum(v, survivors));
  // And in fact any single failure leaves a quorum.
  for (NodeId victim = 0; victim < 5; ++victim) {
    NodeSet rest = v;
    rest.Erase(victim);
    EXPECT_TRUE(safe.IsWriteQuorum(v, rest)) << "victim " << int(victim);
  }
}

TEST(GridCoterie, PreferTallTradesReadCostForWriteAvailability) {
  // The paper's ratio parameter k: 3x4 vs 4x3 for N = 12.
  GridCoterie wide;  // Default: 3 rows x 4 cols.
  GridOptions tall_opts;
  tall_opts.prefer_tall = true;
  GridCoterie tall(tall_opts);  // 4 rows x 3 cols.
  NodeSet v = NodeSet::Universe(12);

  auto wide_read = wide.ReadQuorum(v, 0);
  auto tall_read = tall.ReadQuorum(v, 0);
  ASSERT_TRUE(wide_read.ok() && tall_read.ok());
  EXPECT_EQ(wide_read->Size(), 4u);  // One per column of 4.
  EXPECT_EQ(tall_read->Size(), 3u);  // Cheaper reads.

  // Write quorum sizes match (m + n - 1 either way), but the tall grid's
  // full column is longer (4 nodes vs 3), making writes less available:
  // P(some column fully up) is lower with taller columns.
  auto wide_write = wide.WriteQuorum(v, 0);
  auto tall_write = tall.WriteQuorum(v, 0);
  EXPECT_EQ(wide_write->Size(), 6u);
  EXPECT_EQ(tall_write->Size(), 6u);

  // Both shapes still form valid coteries.
  EXPECT_TRUE(coterie::VerifyCoterieExhaustive(tall, v).ok());
}

TEST(GridCoterie, EmptySetRejected) {
  GridCoterie grid;
  NodeSet empty;
  EXPECT_FALSE(grid.IsReadQuorum(empty, empty));
  EXPECT_FALSE(grid.ReadQuorum(empty, 0).ok());
}

}  // namespace
}  // namespace dcp::coterie
