// The persistent/volatile split of Section 4 across Crash()/Recover():
// the stale flag, desired version, object contents+version and the epoch
// record survive a crash; the replica lock and the locked-for-propagation
// bit do not. Checked in both persistence models — durability off (the
// paper's ideal persistent store: RAM survives untouched) and durability
// on (RAM is discarded and recovery must rebuild everything from the
// checkpoint + WAL, so state that never reached the disk is gone).

#include <gtest/gtest.h>

#include <vector>

#include "protocol/cluster.h"
#include "storage/replica_store.h"

namespace dcp::protocol {
namespace {

using storage::LockOwner;
using storage::ReplicaStore;
using storage::Update;

// --- storage-level contract -----------------------------------------------

TEST(ReplicaStoreCrash, VolatileStateEvaporatesPersistentSurvives) {
  ReplicaStore store(2, NodeSet::Universe(5), {0x11, 0x22});
  store.object().Apply(Update::Total({0xAA}));
  store.MarkStale(7);
  store.SetEpoch(3, NodeSet::FromVector({0, 1, 2}));

  LockOwner writer{1, 42};
  ASSERT_TRUE(store.Lock(writer, /*exclusive=*/true).ok());
  store.set_locked_for_propagation(true);
  ASSERT_TRUE(store.IsLocked());

  store.Crash();

  // Volatile: gone.
  EXPECT_FALSE(store.IsLocked());
  EXPECT_FALSE(store.HoldsLock(writer));
  EXPECT_FALSE(store.locked_for_propagation());

  // Persistent: intact (fail-stop model).
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.object().data(), std::vector<uint8_t>{0xAA});
  EXPECT_TRUE(store.stale());
  EXPECT_EQ(store.desired_version(), 7u);
  EXPECT_EQ(store.epoch_number(), 3u);
  EXPECT_EQ(store.epoch_list(), NodeSet::FromVector({0, 1, 2}));
}

TEST(ReplicaStoreCrash, RestorePersistentOverwritesWholesale) {
  ReplicaStore store(0, NodeSet::Universe(3), {0x01});
  store.Crash();

  storage::VersionedObject recovered({0x0F});
  recovered.InstallSnapshot(9, Update::Total({0xBE, 0xEF}));
  store.RestorePersistent(std::move(recovered), /*stale=*/true,
                          /*desired_version=*/12);
  EXPECT_EQ(store.version(), 9u);
  EXPECT_EQ(store.object().data(), (std::vector<uint8_t>{0xBE, 0xEF}));
  EXPECT_TRUE(store.stale());
  EXPECT_EQ(store.desired_version(), 12u);
}

// --- node-level contract, both persistence models -------------------------

ClusterOptions BaseOptions(bool durable, uint64_t seed = 11) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.coterie = CoterieKind::kMajority;
  opts.seed = seed;
  opts.initial_value = {0x00, 0x00, 0x00, 0x00};
  if (durable) {
    opts.durability.enabled = true;
    // Deterministic worst case: every crash drops the whole unsynced
    // tail, so anything not behind a barrier is provably lost.
    opts.durability.crash.tear_probability = 0;
  }
  return opts;
}

class NodeCrashTest : public ::testing::TestWithParam<bool> {};

TEST_P(NodeCrashTest, CommittedWriteSurvivesCrashRecover) {
  const bool durable = GetParam();
  Cluster cluster(BaseOptions(durable));

  Result<WriteOutcome> w =
      cluster.WriteSync(0, Update::Total({0xCA, 0xFE}));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  const storage::Version committed = w->version;

  // A participant holds a (volatile) lock artifact? Give it one
  // explicitly, plus the propagation bit, to pin down the split.
  ReplicaNode& victim = cluster.node(1);
  LockOwner probe{4, 9999};
  ASSERT_TRUE(victim.store().Lock(probe, /*exclusive=*/true).ok());
  victim.store().set_locked_for_propagation(true);

  cluster.Crash(1);
  cluster.RunFor(50);
  cluster.Recover(1);
  cluster.RunFor(200);

  EXPECT_FALSE(victim.store().IsLocked());
  EXPECT_FALSE(victim.store().locked_for_propagation());
  EXPECT_GE(victim.store().version(), committed);
  if (durable) {
    // Recovery actually went through the engine.
    ASSERT_NE(victim.durable_store(), nullptr);
    EXPECT_GE(victim.durable_store()->last_recovery().replayed_records, 1u);
  } else {
    EXPECT_EQ(victim.durable_store(), nullptr);
  }

  // The cluster keeps working and the recovered node's data reconverges.
  Result<ReadOutcome> r = cluster.ReadSyncRetry(1, 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->version, committed);
}

TEST_P(NodeCrashTest, EpochRecordSurvivesCrashRecover) {
  const bool durable = GetParam();
  Cluster cluster(BaseOptions(durable, 23));

  // Force an epoch change past node 4, then bounce a surviving member.
  cluster.Crash(4);
  cluster.RunFor(50);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  const storage::EpochNumber installed = cluster.node(0).epoch().number;
  ASSERT_GT(installed, 0u);
  ASSERT_FALSE(cluster.node(0).epoch().list.Contains(4));

  cluster.Crash(0);
  cluster.RunFor(50);
  cluster.Recover(0);
  cluster.RunFor(200);

  EXPECT_EQ(cluster.node(0).epoch().number, installed);
  EXPECT_FALSE(cluster.node(0).epoch().list.Contains(4));
}

INSTANTIATE_TEST_SUITE_P(BothPersistenceModels, NodeCrashTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "DurabilityOn"
                                             : "DurabilityOff";
                         });

// --- where the two models must differ -------------------------------------

TEST(NodeCrashSplit, DurabilityOffRamIsThePersistentStore) {
  // The ideal-persistence model: even state that never touched any log
  // survives, because Crash() only clears the volatile slice.
  Cluster cluster(BaseOptions(/*durable=*/false));
  cluster.node(2).store().MarkStale(41);

  cluster.Crash(2);
  cluster.RunFor(20);
  cluster.Recover(2);

  EXPECT_TRUE(cluster.node(2).store().stale());
  EXPECT_EQ(cluster.node(2).store().desired_version(), 41u);
}

TEST(NodeCrashSplit, DurabilityOnRecoveryRebuildsFromDiskOnly) {
  // The same mutation applied behind the WAL's back must NOT survive:
  // recovery discards RAM and replays the (empty) log over the birth
  // state. This is the "disk is the truth" contract the nemesis suite
  // leans on.
  Cluster cluster(BaseOptions(/*durable=*/true));
  cluster.node(2).store().MarkStale(41);

  cluster.Crash(2);
  cluster.RunFor(20);
  cluster.Recover(2);

  EXPECT_FALSE(cluster.node(2).store().stale());
  EXPECT_EQ(cluster.node(2).store().desired_version(), 0u);
  EXPECT_EQ(cluster.node(2).store().version(), 0u);
}

TEST(NodeCrashSplit, DurabilityOnUnsyncedEffectsAreLostCleanly) {
  // Log an update but crash before any barrier completes: the record
  // dies with the tail, and the node recovers to its pre-update state
  // without tripping any replay machinery.
  Cluster cluster(BaseOptions(/*durable=*/true));
  ReplicaNode& victim = cluster.node(3);
  ASSERT_NE(victim.durable_store(), nullptr);

  victim.durable_store()->LogUpdate(0, 1, Update::Total({0x99}));
  victim.store().object().Apply(Update::Total({0x99}));  // RAM-side apply.
  // No Commit(), no sim time for the lazy flush: nothing durable.
  cluster.Crash(3);
  cluster.Recover(3);

  EXPECT_EQ(victim.store().version(), 0u);
  EXPECT_EQ(victim.durable_store()->last_recovery().replayed_records, 0u);
}

}  // namespace
}  // namespace dcp::protocol
