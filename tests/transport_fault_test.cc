// Fault-injection regression tests for the socket transport's wire
// layer, driving rt::SocketTransport directly (no protocol stack):
//
//  - stream corruption (oversized length prefix, undecodable payload)
//    must tear the connection down, never resynchronize by guesswork;
//  - a slow reader must surface as fast send failures at the sender
//    (bounded outbound queue), never wedge a worker thread;
//  - a connection killed mid-frame must deliver whole frames or nothing
//    (single-buffer frames cannot be torn between header and payload);
//  - partial writes must resume correctly and preserve frame order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/message.h"
#include "protocol/wire_codec.h"
#include "runtime/socket_transport.h"

namespace dcp::rt {
namespace {

constexpr auto kWaitBudget = std::chrono::seconds(10);

/// Spins (politely) until `cond` holds or the budget expires.
bool WaitFor(const std::function<bool()>& cond) {
  const auto deadline = std::chrono::steady_clock::now() + kWaitBudget;  // dcp-lint: allow(wall-clock) — real-time test deadline
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;  // dcp-lint: allow(wall-clock) — real-time test deadline
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Thread-safe recording sink: remembers every delivered rpc_id.
class RecordingSink : public net::MessageSink {
 public:
  void Deliver(net::Message msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    rpc_ids_.push_back(msg.rpc_id);
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rpc_ids_.size();
  }

  std::vector<uint64_t> rpc_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rpc_ids_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> rpc_ids_;
};

net::Message TestMessage(NodeId src, NodeId dst, uint64_t rpc_id,
                         size_t padding = 0) {
  net::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.rpc_id = rpc_id;
  msg.kind = net::Message::Kind::kRequest;
  msg.type = net::TypeName("transport-fault-test");
  if (padding > 0) {
    // Fat frames via the status string — fills kernel buffers fast.
    msg.status = Status::Internal(std::string(padding, 'x'));
  }
  return msg;
}

class TransportFaultTest : public ::testing::Test {
 protected:
  void StartTransport(uint32_t nodes, SocketTransportOptions base = {}) {
    base.num_nodes = nodes;
    base.num_workers = 2;
    base.codec = protocol::MakeWireCodec();
    transport_ = std::make_unique<SocketTransport>(base);
    sinks_.clear();
    for (uint32_t i = 0; i < nodes; ++i) {
      sinks_.push_back(std::make_unique<RecordingSink>());
      transport_->Register(NodeId{i}, sinks_.back().get());
    }
    ASSERT_TRUE(transport_->Start().ok());
  }

  void TearDown() override {
    if (transport_) transport_->Stop();
  }

  std::unique_ptr<SocketTransport> transport_;
  std::vector<std::unique_ptr<RecordingSink>> sinks_;
};

TEST_F(TransportFaultTest, OversizedLengthPrefixTearsConnectionDown) {
  StartTransport(2);

  // Healthy traffic first.
  transport_->Send(TestMessage(0, 1, 1));
  ASSERT_TRUE(WaitFor([&] { return sinks_[1]->count() == 1; }));

  // Garbage with an impossible length prefix, then a valid frame behind
  // it. The pre-fix implementation cleared its read buffer and kept the
  // connection — later bytes could be misread as fresh frame headers.
  // The stream is desynchronized; the only safe move is teardown.
  ASSERT_TRUE(transport_
                  ->InjectRawBytesForTest(
                      0, 1, {0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef})
                  .ok());
  transport_->Send(TestMessage(0, 1, 2));

  ASSERT_TRUE(WaitFor([&] { return transport_->counters().decode_failures >= 1; }));

  // Nothing sent after the corruption point may be delivered.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sinks_[1]->count(), 1u);
  EXPECT_EQ(sinks_[1]->rpc_ids(), (std::vector<uint64_t>{1}));

  // The teardown propagates to the write side: later sends fail fast.
  std::atomic<int> failed{0};
  ASSERT_TRUE(WaitFor([&] {
    transport_->Send(TestMessage(0, 1, 3), [&] { failed.fetch_add(1); });
    return failed.load() > 0;
  }));

  // Traffic between other pairs is unaffected... there is no third node
  // here, but the reverse direction of the same TCP connection must be
  // dead too (shutdown kills both directions).
  std::atomic<int> reverse_failed{0};
  ASSERT_TRUE(WaitFor([&] {
    transport_->Send(TestMessage(1, 0, 4), [&] { reverse_failed.fetch_add(1); });
    return reverse_failed.load() > 0;
  }));
}

TEST_F(TransportFaultTest, UndecodablePayloadTearsConnectionDown) {
  StartTransport(2);

  // A plausible length prefix (4 bytes) framing garbage that fails the
  // codec's magic check. Well-framed garbage is equally fatal: correct
  // peers never produce it, so the framing itself cannot be trusted.
  ASSERT_TRUE(transport_
                  ->InjectRawBytesForTest(0, 1,
                                          {0x04, 0x00, 0x00, 0x00,  // len=4
                                           0x00, 0x00, 0x00, 0x00})  // bad magic
                  .ok());
  ASSERT_TRUE(WaitFor([&] { return transport_->counters().decode_failures >= 1; }));

  std::atomic<int> failed{0};
  ASSERT_TRUE(WaitFor([&] {
    transport_->Send(TestMessage(0, 1, 1), [&] { failed.fetch_add(1); });
    return failed.load() > 0;
  }));
  EXPECT_EQ(sinks_[1]->count(), 0u);
}

TEST_F(TransportFaultTest, SlowReaderFailsSendsFastAndSenderStaysLive) {
  SocketTransportOptions o;
  o.max_queue_frames = 8;
  o.max_queue_bytes = 256 * 1024;
  StartTransport(3, o);

  // Node 1 stops reading what node 0 sends. The kernel buffers fill,
  // then the bounded outbound queue, then sends start failing fast —
  // the sending thread must never block (the pre-fix implementation
  // spun a worker thread in a poll/send loop forever).
  transport_->PauseReadsForTest(0, 1, true);

  std::atomic<int> failed{0};
  const auto flood_started = std::chrono::steady_clock::now();  // dcp-lint: allow(wall-clock) — real-time liveness bound
  for (int i = 0; i < 4000 && failed.load() == 0; ++i) {
    transport_->Send(TestMessage(0, 1, static_cast<uint64_t>(i), 32 * 1024),
                     [&] { failed.fetch_add(1); });
  }
  const auto flood_elapsed =
      std::chrono::steady_clock::now() - flood_started;  // dcp-lint: allow(wall-clock) — real-time liveness bound

  ASSERT_TRUE(WaitFor([&] { return failed.load() > 0; }))
      << "backpressure must surface as failed sends, not a blocked sender";
  EXPECT_GE(transport_->counters().send_queue_overflows, 1u);
  // 4000 * 32KiB non-blocking sends finish in far under the old code's
  // worst case (it would hang here until the test timeout).
  EXPECT_LT(flood_elapsed, kWaitBudget);

  // The sender is still live for other peers: 0 -> 2 flows normally.
  transport_->Send(TestMessage(0, 2, 777));
  ASSERT_TRUE(WaitFor([&] { return sinks_[2]->count() == 1; }));

  // Backpressure is not a failure: unpause, and the connection works
  // again (queued frames drain, new sends deliver).
  transport_->PauseReadsForTest(0, 1, false);
  ASSERT_TRUE(WaitFor([&] { return sinks_[1]->count() > 0; }));
  const size_t drained = sinks_[1]->count();
  transport_->Send(TestMessage(0, 1, 9999));
  ASSERT_TRUE(WaitFor([&] { return sinks_[1]->count() > drained; }));
}

TEST_F(TransportFaultTest, ConnectionKilledMidFrameNeverMisdelivers) {
  StartTransport(2);

  // Force flushes to dribble 5 bytes at a time, so a large frame is
  // guaranteed to be in flight when the connection dies.
  transport_->SetWriteCapForTest(5);
  std::atomic<int> failed{0};
  transport_->Send(TestMessage(0, 1, 42, 64 * 1024),
                   [&] { failed.fetch_add(1); });
  transport_->BreakConnectionForTest(0, 1);
  transport_->SetWriteCapForTest(0);

  // All-or-nothing: the receiver saw the whole frame or no frame, and a
  // half-received frame must read as connection death, never as
  // corruption or as a different message.
  ASSERT_TRUE(WaitFor([&] {
    return failed.load() > 0 || sinks_[1]->count() > 0;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(transport_->counters().decode_failures, 0u);
  EXPECT_LE(sinks_[1]->count(), 1u);
  if (sinks_[1]->count() == 1) {
    EXPECT_EQ(sinks_[1]->rpc_ids(), (std::vector<uint64_t>{42}));
  }

  // The torn connection stays down.
  std::atomic<int> later_failed{0};
  ASSERT_TRUE(WaitFor([&] {
    transport_->Send(TestMessage(0, 1, 43), [&] { later_failed.fetch_add(1); });
    return later_failed.load() > 0;
  }));
}

TEST_F(TransportFaultTest, PartialWritesResumeInOrder) {
  StartTransport(2);

  // Every flush is capped to 3 bytes: every frame straddles many writev
  // calls and the POLLOUT resumption path carries all the traffic.
  transport_->SetWriteCapForTest(3);
  constexpr uint64_t kFrames = 20;
  for (uint64_t i = 1; i <= kFrames; ++i) {
    transport_->Send(TestMessage(0, 1, i));
  }
  ASSERT_TRUE(WaitFor([&] { return sinks_[1]->count() == kFrames; }));
  transport_->SetWriteCapForTest(0);

  std::vector<uint64_t> expected(kFrames);
  for (uint64_t i = 0; i < kFrames; ++i) expected[i] = i + 1;
  EXPECT_EQ(sinks_[1]->rpc_ids(), expected)
      << "frames must arrive whole and in send order";
  EXPECT_EQ(transport_->counters().decode_failures, 0u);
}

TEST_F(TransportFaultTest, FloodDeliversInOrderWithPooledBuffers) {
  StartTransport(2);

  constexpr uint64_t kFrames = 2000;
  for (uint64_t i = 1; i <= kFrames; ++i) {
    transport_->Send(TestMessage(0, 1, i));
  }
  ASSERT_TRUE(WaitFor([&] { return sinks_[1]->count() == kFrames; }));

  std::vector<uint64_t> expected(kFrames);
  for (uint64_t i = 0; i < kFrames; ++i) expected[i] = i + 1;
  EXPECT_EQ(sinks_[1]->rpc_ids(), expected);

  const TransportCounters c = transport_->counters();
  EXPECT_EQ(c.frames_sent, kFrames);
  EXPECT_EQ(c.frames_received, kFrames);
  EXPECT_EQ(c.decode_failures, 0u);
  EXPECT_EQ(c.frames_dropped, 0u);
  EXPECT_GE(c.writev_calls, 1u);
  // Every non-blocked writev completes at least one frame; a little
  // slack covers the rare partial write on a full kernel buffer.
  EXPECT_LE(c.writev_calls, c.frames_sent + 16);
  // Steady state reuses encode buffers instead of allocating.
  EXPECT_GT(transport_->buffer_pool().hits(), 0u);
}

}  // namespace
}  // namespace dcp::rt
