// Unit tests for the message-level FaultModel: drop probability honored
// statistically under a fixed seed, duplicated messages delivered exactly
// twice, reordering visible as overtaking, asymmetric one-way cuts, per-link
// latency overrides — and, crucially, that RPC.CallFailed semantics survive
// (on_failed still fires for dropped requests) and that a zeroed model is
// behaviorally identical to no model at all.

#include "net/network.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/rpc.h"
#include "sim/simulator.h"

namespace dcp::net {
namespace {

/// Records every delivered message (type + arrival time), in order.
struct RecordingSink : MessageSink {
  void Deliver(Message msg) override {
    arrivals.push_back({msg.type, owner->Now()});
  }
  sim::Simulator* owner = nullptr;
  std::vector<std::pair<std::string, sim::Time>> arrivals;
};

struct Harness {
  explicit Harness(uint64_t seed = 7, LatencyModel latency = {1.0, 0.0})
      : network(&sim, Rng(seed), latency) {
    for (NodeId n = 0; n < 3; ++n) {
      sinks[n].owner = &sim;
      network.Register(n, &sinks[n]);
    }
  }

  Message Msg(NodeId src, NodeId dst, std::string type = "m") {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = std::move(type);
    return m;
  }

  sim::Simulator sim;
  Network network;
  RecordingSink sinks[3];
};

TEST(NetworkFault, DropProbabilityHonoredStatistically) {
  Harness h;
  LinkFaults f;
  f.drop = 0.3;
  h.network.SetLinkFaults(0, 1, f);
  const int kSends = 4000;
  for (int i = 0; i < kSends; ++i) h.network.Send(h.Msg(0, 1));
  h.sim.Run();

  const NetworkStats& stats = h.network.stats();
  EXPECT_EQ(stats.total_sent, uint64_t(kSends));
  EXPECT_EQ(stats.total_dropped + stats.total_delivered, uint64_t(kSends));
  // 30% +- 4 sigma (sigma ~= sqrt(N*p*(1-p)) ~= 29).
  EXPECT_NEAR(double(stats.total_dropped), 0.3 * kSends, 120.0);
  EXPECT_EQ(stats.by_type.at("m").dropped, stats.total_dropped);
  EXPECT_EQ(h.sinks[1].arrivals.size(), stats.total_delivered);
}

TEST(NetworkFault, DuplicatedMessagesDeliveredExactlyTwice) {
  Harness h;
  LinkFaults f;
  f.duplicate = 1.0;
  h.network.SetLinkFaults(0, 1, f);
  const int kSends = 50;
  for (int i = 0; i < kSends; ++i) h.network.Send(h.Msg(0, 1));
  h.sim.Run();

  const NetworkStats& stats = h.network.stats();
  EXPECT_EQ(stats.total_sent, uint64_t(kSends));
  EXPECT_EQ(stats.total_duplicated, uint64_t(kSends));
  EXPECT_EQ(stats.total_delivered, uint64_t(2 * kSends));
  EXPECT_EQ(h.sinks[1].arrivals.size(), size_t(2 * kSends));
  EXPECT_EQ(stats.by_type.at("m").duplicated, uint64_t(kSends));
}

TEST(NetworkFault, ReorderingLetsLaterSendsOvertake) {
  Harness h(/*seed=*/11);
  LinkFaults f;
  f.reorder = 0.5;
  f.reorder_spike = 100.0;  // Far beyond the base latency of 1.0.
  h.network.SetLinkFaults(0, 1, f);
  const int kSends = 40;
  for (int i = 0; i < kSends; ++i) {
    h.network.Send(h.Msg(0, 1, "m" + std::to_string(i)));
  }
  h.sim.Run();

  ASSERT_EQ(h.sinks[1].arrivals.size(), size_t(kSends));
  EXPECT_GT(h.network.stats().total_reordered, 0u);
  // With half the messages spiked by up to 100 time units, arrival order
  // must differ from send order.
  std::vector<std::string> order;
  for (const auto& [type, at] : h.sinks[1].arrivals) order.push_back(type);
  std::vector<std::string> sent;
  for (int i = 0; i < kSends; ++i) sent.push_back("m" + std::to_string(i));
  EXPECT_NE(order, sent);
}

TEST(NetworkFault, AsymmetricCutIsOneWay) {
  Harness h;
  h.network.CutLink(0, 1);
  EXPECT_FALSE(h.network.Reachable(0, 1));
  EXPECT_TRUE(h.network.Reachable(1, 0));
  EXPECT_NE(h.network.Reachable(0, 1), h.network.Reachable(1, 0));

  bool failed_0_to_1 = false;
  h.network.Send(h.Msg(0, 1), [&] { failed_0_to_1 = true; });
  h.network.Send(h.Msg(1, 0));
  h.sim.Run();
  EXPECT_TRUE(failed_0_to_1);
  EXPECT_TRUE(h.sinks[1].arrivals.empty());
  EXPECT_EQ(h.sinks[0].arrivals.size(), 1u);

  h.network.RestoreLink(0, 1);
  EXPECT_TRUE(h.network.Reachable(0, 1));
}

TEST(NetworkFault, OnFailedFiresForDroppedRequests) {
  Harness h;
  LinkFaults f;
  f.drop = 1.0;
  h.network.SetGlobalFaults(f);

  bool on_failed_fired = false;
  h.network.Send(h.Msg(0, 1), [&] { on_failed_fired = true; });
  h.sim.Run();
  EXPECT_TRUE(on_failed_fired);
  EXPECT_EQ(h.network.stats().total_dropped, 1u);
  // The loss is a *fault-model* drop, not a reachability failure.
  EXPECT_EQ(h.network.stats().total_failed, 0u);
}

TEST(NetworkFault, DroppedRequestSurfacesAsCallFailedNotTimeout) {
  sim::Simulator sim;
  Network network(&sim, Rng(3), LatencyModel{1.0, 0.0});
  RpcRuntime rpc0(&network, 0, /*timeout=*/1000);
  RpcRuntime rpc1(&network, 1, /*timeout=*/1000);
  struct NullService : RpcService {
    Result<PayloadPtr> HandleRequest(NodeId, const std::string&,
                                     const PayloadPtr& req) override {
      return req;
    }
  } svc;
  rpc0.set_service(&svc);
  rpc1.set_service(&svc);

  LinkFaults f;
  f.drop = 1.0;
  network.SetLinkFaults(0, 1, f);

  bool got = false;
  rpc0.Call(1, "echo", nullptr, [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    EXPECT_EQ(r.transport.code(), StatusCode::kCallFailed);
    got = true;
  });
  sim.Run();
  EXPECT_TRUE(got);
  // The caller learned at would-be delivery time (t=1), not at the
  // timeout (t=1000).
  EXPECT_LT(sim.Now(), 10.0);
}

TEST(NetworkFault, DroppedResponseSurfacesAsTimeout) {
  sim::Simulator sim;
  Network network(&sim, Rng(3), LatencyModel{1.0, 0.0});
  RpcRuntime rpc0(&network, 0, /*timeout=*/50);
  RpcRuntime rpc1(&network, 1, /*timeout=*/50);
  struct NullService : RpcService {
    Result<PayloadPtr> HandleRequest(NodeId, const std::string&,
                                     const PayloadPtr& req) override {
      return req;
    }
  } svc;
  rpc0.set_service(&svc);
  rpc1.set_service(&svc);

  LinkFaults f;
  f.drop = 1.0;
  network.SetLinkFaults(1, 0, f);  // Replies 1 -> 0 all lost.

  bool got = false;
  rpc0.Call(1, "echo", nullptr, [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    EXPECT_EQ(r.transport.code(), StatusCode::kTimedOut);
    got = true;
  });
  sim.Run();
  EXPECT_TRUE(got);
}

TEST(NetworkFault, PerLinkLatencyOverride) {
  Harness h;
  LinkFaults f;
  f.latency = LatencyModel{50.0, 0.0};
  h.network.SetLinkFaults(0, 1, f);
  h.network.Send(h.Msg(0, 1));
  h.network.Send(h.Msg(0, 2));
  h.sim.Run();
  ASSERT_EQ(h.sinks[1].arrivals.size(), 1u);
  ASSERT_EQ(h.sinks[2].arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(h.sinks[1].arrivals[0].second, 50.0);  // Overridden.
  EXPECT_DOUBLE_EQ(h.sinks[2].arrivals[0].second, 1.0);   // Default.
}

TEST(NetworkFault, ZeroedModelIsIdenticalToNoModel) {
  auto run = [](bool install_zeroed_model) {
    Harness h(/*seed=*/99, LatencyModel{1.0, 0.5});
    if (install_zeroed_model) h.network.set_fault_model(FaultModel{});
    for (int i = 0; i < 200; ++i) {
      h.network.Send(h.Msg(i % 3, (i + 1) % 3, "t" + std::to_string(i % 5)));
    }
    h.sim.Run();
    return std::make_pair(h.network.stats(), h.sinks[0].arrivals);
  };
  auto [stats_plain, arrivals_plain] = run(false);
  auto [stats_zeroed, arrivals_zeroed] = run(true);
  EXPECT_EQ(stats_plain, stats_zeroed);
  EXPECT_EQ(arrivals_plain, arrivals_zeroed);  // Same delivery times too.
  EXPECT_EQ(stats_plain.total_dropped, 0u);
  EXPECT_EQ(stats_plain.total_duplicated, 0u);
}

TEST(NetworkFault, ClearFaultsLiftsEverything) {
  Harness h;
  LinkFaults f;
  f.drop = 1.0;
  h.network.SetGlobalFaults(f);
  h.network.CutLink(1, 2);
  h.network.ClearFaults();
  EXPECT_TRUE(h.network.fault_model().trivial());
  EXPECT_TRUE(h.network.Reachable(1, 2));
  h.network.Send(h.Msg(0, 1));
  h.sim.Run();
  EXPECT_EQ(h.sinks[1].arrivals.size(), 1u);
  EXPECT_EQ(h.network.stats().total_dropped, 0u);
}

TEST(NetworkFault, DuplicateOfFailedMessageCountsFailuresOnce) {
  Harness h;
  LinkFaults f;
  f.duplicate = 1.0;
  h.network.SetLinkFaults(0, 1, f);
  h.network.SetNodeUp(1, false);
  int failures = 0;
  h.network.Send(h.Msg(0, 1), [&] { ++failures; });
  h.sim.Run();
  // Both copies are undeliverable, but only the original carries
  // on_failed — CallFailed must not fire twice per logical send.
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(h.network.stats().total_failed, 2u);
}

}  // namespace
}  // namespace dcp::net
