// Tests for group epoch management (Section 2): several data items
// replicated on the same node set share one epoch, one epoch-checking
// stream, and one epoch-change 2PC — amortizing the overhead — while
// reads, writes, locks, staleness, and propagation stay per-object.

#include <gtest/gtest.h>

#include <vector>

#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

ClusterOptions GroupOptions(uint32_t objects) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.num_objects = objects;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = 77;
  opts.initial_value = {0, 0, 0, 0};
  return opts;
}

TEST(GroupEpoch, ObjectsAreIndependentForWritesAndReads) {
  Cluster cluster(GroupOptions(4));
  for (storage::ObjectId obj = 0; obj < 4; ++obj) {
    auto w = cluster.WriteSyncRetry(static_cast<NodeId>(obj), obj,
                                    Update::Partial(0, {uint8_t(obj + 1)}),
                                    10);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    EXPECT_EQ(w->version, 1u);  // Versions are per object.
  }
  for (storage::ObjectId obj = 0; obj < 4; ++obj) {
    auto r = cluster.ReadSyncRetry(8, obj, 10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->data[0], uint8_t(obj + 1));
  }
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(GroupEpoch, PerObjectLocksDoNotConflictAcrossObjects) {
  Cluster cluster(GroupOptions(2));
  // Start a write on object 0 and, before it finishes, one on object 1
  // from a different coordinator. Both must commit (no lock conflicts).
  bool done0 = false, ok0 = false, done1 = false, ok1 = false;
  cluster.Write(0, 0, Update::Partial(0, {1}), [&](Result<WriteOutcome> r) {
    done0 = true;
    ok0 = r.ok();
  });
  cluster.Write(5, 1, Update::Partial(0, {2}), [&](Result<WriteOutcome> r) {
    done1 = true;
    ok1 = r.ok();
  });
  while ((!done0 || !done1) && cluster.simulator().Step()) {
  }
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
}

TEST(GroupEpoch, SameObjectWritesStillExclude) {
  Cluster cluster(GroupOptions(2));
  bool done0 = false, ok0 = false, done1 = false, ok1 = false;
  cluster.Write(0, 1, Update::Partial(0, {1}), [&](Result<WriteOutcome> r) {
    done0 = true;
    ok0 = r.ok();
  });
  cluster.Write(5, 1, Update::Partial(0, {2}), [&](Result<WriteOutcome> r) {
    done1 = true;
    ok1 = r.ok();
  });
  while ((!done0 || !done1) && cluster.simulator().Step()) {
  }
  // Both may abort on the conflict (the deadlock-free refuse-and-retry
  // policy); what must NOT happen is both committing version 1.
  int committed = (ok0 ? 1 : 0) + (ok1 ? 1 : 0);
  EXPECT_LE(committed, 2);
  // Retried writes serialize cleanly behind whatever committed.
  auto w = cluster.WriteSyncRetry(3, 1, Update::Partial(0, {3}), 10);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->version, static_cast<Version>(committed + 1));
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(GroupEpoch, OneEpochChangeCoversAllObjects) {
  Cluster cluster(GroupOptions(4));
  // Write different amounts to each object, so per-object versions vary.
  for (storage::ObjectId obj = 0; obj < 4; ++obj) {
    for (uint32_t k = 0; k <= obj; ++k) {
      ASSERT_TRUE(cluster
                      .WriteSyncRetry(static_cast<NodeId>(k % 9), obj,
                                      Update::Partial(0, {uint8_t(k)}), 10)
                      .ok());
    }
  }
  cluster.RunFor(2000);
  cluster.Crash(4);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());

  NodeSet expected = NodeSet::Universe(9);
  expected.Erase(4);
  for (NodeId i = 0; i < 9; ++i) {
    if (i == 4) continue;
    // The shared epoch record moved once, for every object.
    EXPECT_EQ(cluster.node(i).epoch().number, 1u);
    EXPECT_EQ(cluster.node(i).epoch().list, expected);
    for (storage::ObjectId obj = 0; obj < 4; ++obj) {
      EXPECT_EQ(cluster.node(i).store(obj).epoch_number(), 1u);
    }
  }
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
}

TEST(GroupEpoch, ReadmissionMarksOnlyBehindObjectsStale) {
  Cluster cluster(GroupOptions(3));
  cluster.Crash(8);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  // Write objects 0 and 2 while node 8 is away; object 1 stays at v0.
  ASSERT_TRUE(cluster.WriteSyncRetry(0, 0, Update::Partial(0, {9}), 10).ok());
  ASSERT_TRUE(cluster.WriteSyncRetry(1, 2, Update::Partial(0, {7}), 10).ok());

  cluster.Recover(8);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  // Node 8 re-enters: stale for objects 0 and 2 (it missed writes), but
  // current for object 1 (nothing happened there).
  EXPECT_TRUE(cluster.node(8).store(0).stale());
  EXPECT_FALSE(cluster.node(8).store(1).stale());
  EXPECT_TRUE(cluster.node(8).store(2).stale());

  cluster.RunFor(3000);  // Propagation drains per object.
  EXPECT_FALSE(cluster.node(8).store(0).stale());
  EXPECT_FALSE(cluster.node(8).store(2).stale());
  EXPECT_EQ(cluster.node(8).store(0).version(), 1u);
  EXPECT_EQ(cluster.node(8).store(2).version(), 1u);
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
}

TEST(GroupEpoch, EpochChangeBlockedIfAnyObjectLacksCurrentReplica) {
  Cluster cluster(GroupOptions(2));
  // Hand-build the dangerous state for object 1: the only current
  // replica is node 4, everyone else stale (desired version 3).
  for (uint32_t i = 0; i < 9; ++i) {
    auto& store = cluster.node(i).store(1);
    int target = (i == 4) ? 3 : 2;
    for (int v = 0; v < target; ++v) {
      store.object().Apply(storage::Update::Partial(0, {uint8_t(v)}));
    }
    if (i != 4) store.MarkStale(3);
  }
  cluster.Crash(4);
  // Object 0 is fine everywhere, but object 1 has no current replica
  // among the survivors: the group epoch change must refuse.
  Status s = cluster.CheckEpochSync(0);
  EXPECT_TRUE(s.IsStaleData()) << s.ToString();
  for (NodeId i = 0; i < 9; ++i) {
    EXPECT_EQ(cluster.node(i).epoch().number, 0u);
  }
  // Object 0 is still writable through the old epoch (HeavyProcedure).
  auto w = cluster.WriteSyncRetry(0, 0, Update::Partial(0, {1}), 10);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
}

TEST(GroupEpoch, PollTrafficIsPerGroupNotPerObject) {
  // The amortization claim, observed directly: an epoch check costs one
  // poll round regardless of how many objects the group holds.
  for (uint32_t objects : {1u, 8u}) {
    Cluster cluster(GroupOptions(objects));
    cluster.network().ResetStats();
    ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
    EXPECT_EQ(cluster.network().stats().by_type.at("epoch-poll").sent, 9u)
        << objects << " objects";
  }
}

TEST(GroupEpoch, ChurnWithManyObjects) {
  ClusterOptions opts = GroupOptions(3);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 200;
  Cluster cluster(opts);
  Rng rng(4242);
  for (int round = 0; round < 8; ++round) {
    NodeId victim = static_cast<NodeId>(rng.Uniform(9));
    cluster.Crash(victim);
    cluster.RunFor(1200);
    for (storage::ObjectId obj = 0; obj < 3; ++obj) {
      NodeId coord = static_cast<NodeId>((victim + 1 + obj) % 9);
      auto w = cluster.WriteSyncRetry(coord, obj,
                                      Update::Partial(obj, {uint8_t(round)}),
                                      8);
      EXPECT_TRUE(w.ok()) << "round " << round << " object " << obj << ": "
                          << w.status().ToString();
    }
    cluster.Recover(victim);
    cluster.RunFor(1200);
  }
  cluster.RunFor(10000);
  EXPECT_TRUE(cluster.Quiescent());
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
  for (NodeId i = 0; i < 9; ++i) {
    for (storage::ObjectId obj = 0; obj < 3; ++obj) {
      EXPECT_FALSE(cluster.node(i).store(obj).stale())
          << "node " << i << " object " << obj;
    }
  }
}

}  // namespace
}  // namespace dcp::protocol
