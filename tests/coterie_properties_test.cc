#include "coterie/properties.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "coterie/grid.h"
#include "coterie/hierarchical.h"
#include "coterie/majority.h"
#include "coterie/tree.h"

namespace dcp::coterie {
namespace {

std::unique_ptr<CoterieRule> MakeRule(const std::string& name) {
  if (name == "grid") return std::make_unique<GridCoterie>();
  if (name == "grid_unopt") {
    GridOptions o;
    o.short_column_optimization = false;
    return std::make_unique<GridCoterie>(o);
  }
  if (name == "grid_colsafe") {
    GridOptions o;
    o.layout = GridLayout::kColumnSafe;
    return std::make_unique<GridCoterie>(o);
  }
  if (name == "grid_tall") {
    GridOptions o;
    o.prefer_tall = true;
    return std::make_unique<GridCoterie>(o);
  }
  if (name == "majority") return std::make_unique<MajorityCoterie>();
  if (name == "weighted") {
    WeightedVotingCoterie::Options o;
    o.votes = {{0, 3}, {1, 2}};  // Non-uniform votes.
    return std::make_unique<WeightedVotingCoterie>(o);
  }
  if (name == "tree") return std::make_unique<TreeCoterie>();
  if (name == "hierarchical") return std::make_unique<HierarchicalCoterie>();
  return nullptr;
}

/// (rule name, N): exhaustive verification over the universe of size N.
class CoterieExhaustive
    : public ::testing::TestWithParam<std::tuple<std::string, uint32_t>> {};

TEST_P(CoterieExhaustive, IntersectionAndExistence) {
  auto [name, n] = GetParam();
  auto rule = MakeRule(name);
  ASSERT_NE(rule, nullptr);
  NodeSet v = NodeSet::Universe(n);
  Status s = VerifyCoterieExhaustive(*rule, v);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(CoterieExhaustive, QuorumFunctionAgreesWithPredicates) {
  auto [name, n] = GetParam();
  auto rule = MakeRule(name);
  NodeSet v = NodeSet::Universe(n);
  Status s = VerifyQuorumFunction(*rule, v, /*selectors=*/64);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(CoterieExhaustive, HoldsOverSparseNodeIds) {
  // The epoch mechanism hands coterie rules arbitrary ordered sets, not
  // just {0..n-1}; sparse ids must behave identically (positions by rank).
  auto [name, n] = GetParam();
  auto rule = MakeRule(name);
  NodeSet v;
  for (uint32_t i = 0; i < n; ++i) v.Insert(3 * i + 7);
  Status s = VerifyCoterieExhaustive(*rule, v);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(VerifyQuorumFunction(*rule, v, 16).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllRulesSmallN, CoterieExhaustive,
    ::testing::Combine(::testing::Values("grid", "grid_unopt", "grid_colsafe",
                                         "grid_tall", "majority",
                                         "weighted", "tree", "hierarchical"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                         10u, 12u, 14u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint32_t>>& i) {
      return std::get<0>(i.param) + "_" +
             std::to_string(std::get<1>(i.param));
    });

class CoterieRandomized
    : public ::testing::TestWithParam<std::tuple<std::string, uint32_t>> {};

TEST_P(CoterieRandomized, IntersectionOnLargeSets) {
  auto [name, n] = GetParam();
  auto rule = MakeRule(name);
  NodeSet v = NodeSet::Universe(n);
  Rng rng(n * 1000003);
  Status s = VerifyCoterieRandomized(*rule, v, &rng, /*samples=*/300);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(VerifyQuorumFunction(*rule, v, 128).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllRulesLargeN, CoterieRandomized,
    ::testing::Combine(::testing::Values("grid", "grid_unopt", "grid_colsafe",
                                         "grid_tall", "majority",
                                         "weighted", "tree", "hierarchical"),
                       ::testing::Values(20u, 30u, 50u, 100u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint32_t>>& i) {
      return std::get<0>(i.param) + "_" +
             std::to_string(std::get<1>(i.param));
    });

TEST(CoterieMinimalQuorums, GridMinimalWriteQuorumsAre2SqrtMinus1) {
  GridCoterie grid;
  NodeSet v = NodeSet::Universe(9);
  auto writes = EnumerateMinimalQuorums(grid, v, /*read=*/false);
  ASSERT_FALSE(writes.empty());
  for (const NodeSet& w : writes) {
    EXPECT_EQ(w.Size(), 5u) << w.ToString();  // 2*3 - 1.
  }
  auto reads = EnumerateMinimalQuorums(grid, v, /*read=*/true);
  for (const NodeSet& r : reads) {
    EXPECT_EQ(r.Size(), 3u) << r.ToString();
  }
  EXPECT_EQ(reads.size(), 27u);  // 3^3 column choices.
}

TEST(CoterieMinimalQuorums, MajorityMinimalQuorumsAreMajorities) {
  MajorityCoterie majority;
  NodeSet v = NodeSet::Universe(7);
  auto writes = EnumerateMinimalQuorums(majority, v, false);
  EXPECT_EQ(writes.size(), 35u);  // C(7,4).
  for (const NodeSet& w : writes) EXPECT_EQ(w.Size(), 4u);
}

TEST(CoterieMinimalQuorums, TreeFailureFreePathIsLogSize) {
  TreeCoterie tree;
  NodeSet v = NodeSet::Universe(7);  // Perfect binary tree, height 2.
  auto q = tree.ReadQuorum(v, 0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Size(), 3u);  // Root-to-leaf path.
  auto quorums = EnumerateMinimalQuorums(tree, v, false);
  // Paths of size 3 exist among the minimal quorums.
  bool found_path = false;
  for (const NodeSet& s : quorums) found_path |= s.Size() == 3;
  EXPECT_TRUE(found_path);
}

TEST(WeightedVoting, VotesShiftQuorums) {
  WeightedVotingCoterie::Options o;
  o.votes = {{0, 5}};  // Node 0 dominates.
  WeightedVotingCoterie rule(o);
  NodeSet v = NodeSet::Universe(5);  // Total votes 5 + 4 = 9; majority 5.
  EXPECT_TRUE(rule.IsWriteQuorum(v, NodeSet({0})));
  EXPECT_FALSE(rule.IsWriteQuorum(v, NodeSet({1, 2, 3, 4})));
}

}  // namespace
}  // namespace dcp::coterie
