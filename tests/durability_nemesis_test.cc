// Crash-point storms against the durable storage engine. The nemesis
// repeatedly kills nodes *while they hold prepared-but-undecided 2PC
// actions* (plus ordinary crash storms), with every crash dropping or
// tearing the unsynced WAL tail. After healing, recovery must have
// rebuilt every node purely from checkpoint + log, and the invariants
// the engine exists for must hold: no committed (client-acked) version
// lost, no torn record applied, epochs never regress across recoveries.
// Plus determinism: durability-on runs replay byte-identically from one
// seed, and the scenario generator is a pure function of its seed.

#include "harness/nemesis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/client_history.h"
#include "analysis/linearize.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::harness {
namespace {

using protocol::Cluster;
using protocol::ClusterOptions;
using protocol::CoterieKind;

constexpr sim::Time kHorizon = 12000;

ClusterOptions DurableOptions(CoterieKind kind, uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = kind;
  opts.seed = seed;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  // The standing message-level fault model: the crash points compose
  // with lossy, duplicating, reordering links.
  opts.fault_model.global.drop = 0.05;
  opts.fault_model.global.duplicate = 0.05;
  opts.fault_model.global.reorder = 0.10;
  opts.fault_model.global.reorder_spike = 20.0;
  // The subject under test: every Crash() now hits a simulated disk,
  // and half the crashes tear the unsynced tail mid-record.
  opts.durability.enabled = true;
  opts.durability.crash.tear_probability = 0.5;
  // Small threshold so long runs also exercise checkpoint + truncation
  // interleaved with the crash storm.
  opts.durability.checkpoint_threshold_bytes = 4096;
  return opts;
}

bool RunToQuiescence(Cluster& cluster, sim::Time budget) {
  const sim::Time slice = 500;
  for (sim::Time spent = 0; spent < budget; spent += slice) {
    cluster.RunFor(slice);
    if (cluster.Quiescent()) return true;
  }
  return cluster.Quiescent();
}

/// Highest version the cluster ever acknowledged to a client for
/// `object`. The history recorder only records decided operations, so
/// this is exactly the durability obligation: every version in here was
/// promised.
storage::Version MaxAckedVersion(Cluster& cluster, storage::ObjectId object) {
  storage::Version max_acked = 0;
  for (const auto& w : cluster.history(object).writes()) {
    max_acked = std::max(max_acked, w.version);
  }
  return max_acked;
}

class CrashPointSweep
    : public ::testing::TestWithParam<std::tuple<CoterieKind, int>> {};

TEST_P(CrashPointSweep, NoCommittedVersionLostAndInvariantsHold) {
  auto [kind, seed] = GetParam();
  Cluster cluster(DurableOptions(kind, uint64_t(seed)));

  Scenario scenario = CrashPointScenario(uint64_t(seed) * 104729 + 7,
                                         cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = uint64_t(seed) + 1000;
  wopts.client_history = &history;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();

  ASSERT_TRUE(RunToQuiescence(cluster, 20000))
      << "cluster failed to quiesce after the crash storm (seed " << seed
      << ")";

  // The standard four checkers (Lemma 1, replica agreement, 1SR).
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok())
      << cluster.CheckEpochInvariants().ToString();
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok())
      << cluster.CheckReplicaConsistency().ToString();
  EXPECT_TRUE(cluster.CheckHistory().ok())
      << cluster.CheckHistory().ToString();
  EXPECT_TRUE(cluster.Quiescent());

  // End-to-end client-consistency verdict over the crash storm: crashes
  // that tear WAL tails and rebuild nodes from disk must never surface
  // to clients as a non-linearizable read or a lost acked write.
  analysis::AuditOptions aopts;
  aopts.mode = analysis::AuditMode::kLinearizable;
  aopts.initial_value = std::vector<uint8_t>(32, 0);
  analysis::AuditVerdict verdict = analysis::AuditHistory(history, aopts);
  EXPECT_TRUE(verdict.ok) << verdict.ToString();
  EXPECT_FALSE(verdict.inconclusive) << verdict.ToString();

  // The durability invariant: every version acked to a client survived
  // the storm on at least one current replica, and is readable.
  const storage::Version max_acked = MaxAckedVersion(cluster, 0);
  storage::Version max_replica = 0;
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    if (!cluster.node(i).store().stale()) {
      max_replica = std::max(max_replica, cluster.node(i).store().version());
    }
  }
  EXPECT_GE(max_replica, max_acked)
      << "a client-acked version vanished from every replica (seed " << seed
      << ")";
  auto r = cluster.ReadSyncRetry(0, 20);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->version, max_acked);

  // The run must actually have exercised the engine: nodes crashed and
  // recovered from disk under way.
  EXPECT_GT(nemesis.faults_applied(), 0u);
  EXPECT_GT(cluster.metrics().counter("disk.crashes")->value(), 0u);
  EXPECT_GT(cluster.metrics().counter("store.recoveries")->value(), 0u);
  EXPECT_GT(cluster.metrics().counter("wal.records")->value(), 0u);
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<CoterieKind, int>>& info) {
  auto [kind, seed] = info.param;
  std::string k = kind == CoterieKind::kGrid ? "Grid" : "Majority";
  return k + "Seed" + std::to_string(seed);
}

// 2 coteries x 20 seeds = 40 distinct crash-point storms.
INSTANTIATE_TEST_SUITE_P(
    Seeds, CrashPointSweep,
    ::testing::Combine(::testing::Values(CoterieKind::kGrid,
                                         CoterieKind::kMajority),
                       ::testing::Range(1, 21)),
    SweepName);

// --- epoch monotonicity across recoveries ---------------------------------

// A node's recovered epoch can never regress: the WAL is append-only and
// replay installs epochs monotonically, so each recovery observes an
// epoch >= the previous recovery's. Driven deterministically: epoch
// changes advance while one node is bounced over and over.
TEST(DurabilityEpochs, RecoveredEpochNeverRegresses) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.coterie = CoterieKind::kMajority;
  opts.seed = 31;
  opts.initial_value = std::vector<uint8_t>(8, 0);
  opts.durability.enabled = true;
  Cluster cluster(opts);

  storage::EpochNumber last_recovered = 0;
  for (int round = 0; round < 5; ++round) {
    // Advance the epoch: exclude node 4, then readmit it.
    cluster.Crash(4);
    cluster.RunFor(50);
    ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
    cluster.Recover(4);
    cluster.RunFor(50);
    ASSERT_TRUE(cluster.CheckEpochSync(0).ok());

    // Bounce node 1 and check its post-recovery (disk-rebuilt) epoch.
    cluster.Crash(1);
    cluster.RunFor(30);
    cluster.Recover(1);
    storage::EpochNumber recovered = cluster.node(1).epoch().number;
    EXPECT_GE(recovered, last_recovered) << "round " << round;
    last_recovered = recovered;
    cluster.RunFor(200);
  }
  EXPECT_GT(last_recovered, 0u);
}

// --- determinism ----------------------------------------------------------

struct DurableFingerprint {
  net::NetworkStats network_stats;
  std::vector<std::string> fault_descriptions;
  std::vector<storage::Version> write_versions;
  std::vector<double> write_times;
  std::vector<uint64_t> replica_fingerprints;
  uint64_t events_executed = 0;
  uint64_t disk_crashes = 0;
  uint64_t torn_tails = 0;
  uint64_t recoveries = 0;
  uint64_t recovered_records = 0;
  uint64_t wal_records = 0;
  uint64_t checkpoints = 0;
};

DurableFingerprint RunDurableOnce(uint64_t seed, bool durable) {
  ClusterOptions opts = DurableOptions(CoterieKind::kGrid, seed);
  opts.durability.enabled = durable;
  Cluster cluster(opts);

  Scenario scenario =
      CrashPointScenario(seed + 17, cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);

  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = seed + 2;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();
  cluster.RunFor(8000);

  DurableFingerprint fp;
  fp.network_stats = cluster.network().stats();
  for (const auto& applied : nemesis.log()) {
    fp.fault_descriptions.push_back(applied.description);
  }
  for (const auto& w : cluster.history().writes()) {
    fp.write_versions.push_back(w.version);
    fp.write_times.push_back(w.decided_at);
  }
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    fp.replica_fingerprints.push_back(
        cluster.node(i).store().object().Fingerprint());
  }
  fp.events_executed = cluster.simulator().events_executed();
  fp.disk_crashes = cluster.metrics().counter("disk.crashes")->value();
  fp.torn_tails = cluster.metrics().counter("disk.torn_tails")->value();
  fp.recoveries = cluster.metrics().counter("store.recoveries")->value();
  fp.recovered_records =
      cluster.metrics().counter("store.recovered_records")->value();
  fp.wal_records = cluster.metrics().counter("wal.records")->value();
  fp.checkpoints = cluster.metrics().counter("store.checkpoints")->value();
  return fp;
}

TEST(DurabilityDeterminism, DurableRunsReplayIdentically) {
  DurableFingerprint a = RunDurableOnce(4242, /*durable=*/true);
  DurableFingerprint b = RunDurableOnce(4242, /*durable=*/true);
  EXPECT_EQ(a.network_stats, b.network_stats);
  EXPECT_EQ(a.fault_descriptions, b.fault_descriptions);
  EXPECT_EQ(a.write_versions, b.write_versions);
  EXPECT_EQ(a.write_times, b.write_times);
  EXPECT_EQ(a.replica_fingerprints, b.replica_fingerprints);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.disk_crashes, b.disk_crashes);
  EXPECT_EQ(a.torn_tails, b.torn_tails);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.recovered_records, b.recovered_records);
  EXPECT_EQ(a.wal_records, b.wal_records);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  // The runs actually crashed through the disk model.
  EXPECT_GT(a.disk_crashes, 0u);
  EXPECT_GT(a.recoveries, 0u);
}

TEST(DurabilityDeterminism, DurabilityOffRunsReplayIdenticallyToo) {
  // The crash-point scenario under the ideal-persistence model: same
  // seed, same bytes — and no disk/WAL/recovery activity at all.
  DurableFingerprint a = RunDurableOnce(909, /*durable=*/false);
  DurableFingerprint b = RunDurableOnce(909, /*durable=*/false);
  EXPECT_EQ(a.network_stats, b.network_stats);
  EXPECT_EQ(a.fault_descriptions, b.fault_descriptions);
  EXPECT_EQ(a.write_versions, b.write_versions);
  EXPECT_EQ(a.write_times, b.write_times);
  EXPECT_EQ(a.replica_fingerprints, b.replica_fingerprints);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.disk_crashes, 0u);
  EXPECT_EQ(a.recoveries, 0u);
  EXPECT_EQ(a.wal_records, 0u);
}

TEST(DurabilityDeterminism, CrashPointScenarioIsPureFunctionOfSeed) {
  Scenario a = CrashPointScenario(9, 9, 20000);
  Scenario b = CrashPointScenario(9, 9, 20000);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_FALSE(a.events.empty());
  bool saw_staged = false;
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].Describe(), b.events[i].Describe());
    EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at);
    EXPECT_DOUBLE_EQ(a.events[i].duration, b.events[i].duration);
    if (a.events[i].kind == NemesisEvent::Kind::kStagedCrash) {
      saw_staged = true;
    }
  }
  EXPECT_TRUE(saw_staged) << "a crash-point scenario with no staged "
                             "crashes exercises nothing new";
  EXPECT_FALSE(a.churn);  // Crash timing stays with the staged machinery.
}

}  // namespace
}  // namespace dcp::harness
