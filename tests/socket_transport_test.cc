// Threaded smoke test for the socket transport backend: five
// ReplicaNodes over a real loopback TCP mesh driving the actual
// protocol stack — total writes, partial writes, reads, and an epoch
// change around a failed node. This is the suite the TSan CI lane runs
// under -fsanitize=thread.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness/socket_cluster.h"
#include "storage/versioned_object.h"

namespace dcp::harness {
namespace {

using storage::Update;

SocketClusterOptions SmokeOptions() {
  SocketClusterOptions o;
  o.num_nodes = 5;
  o.coterie = protocol::CoterieKind::kMajority;
  o.initial_value = {0, 0, 0, 0, 0, 0, 0, 0};
  return o;
}

TEST(SocketTransportTest, StartStopIsCleanAndIdempotent) {
  SocketCluster cluster(SmokeOptions());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Start().ok());  // Second Start is a no-op.
  cluster.Stop();
  cluster.Stop();  // Second Stop is a no-op.
}

TEST(SocketTransportTest, WritesReadsAndPartialWritesOverSockets) {
  SocketCluster cluster(SmokeOptions());
  ASSERT_TRUE(cluster.Start().ok());

  // Total write from node 0.
  auto w1 = cluster.WriteSyncRetry(0, 0, Update::Total({1, 2, 3, 4}));
  ASSERT_TRUE(w1.ok()) << w1.status().ToString();
  EXPECT_EQ(w1->version, 1u);

  // Partial write from a different coordinator: the paper's partial-write
  // support, over real sockets.
  auto w2 = cluster.WriteSyncRetry(2, 0, Update::Partial(1, {9, 9}));
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  EXPECT_EQ(w2->version, 2u);

  // Every coordinator reads back the merged value.
  for (NodeId reader = 0; reader < cluster.num_nodes(); ++reader) {
    auto r = cluster.ReadSync(reader);
    ASSERT_TRUE(r.ok()) << "reader " << reader << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->version, 2u) << "reader " << reader;
    EXPECT_EQ(r->data, (std::vector<uint8_t>{1, 9, 9, 4})) << "reader "
                                                           << reader;
  }

  // Real frames crossed the wire (not just self-delivery).
  EXPECT_GT(cluster.transport().frames_sent(), 0u);
  EXPECT_GT(cluster.transport().frames_received(), 0u);
}

TEST(SocketTransportTest, EpochChangeExcludesAndReadmitsAFailedNode) {
  SocketCluster cluster(SmokeOptions());
  ASSERT_TRUE(cluster.Start().ok());

  auto w1 = cluster.WriteSyncRetry(0, 0, Update::Total({7, 7}));
  ASSERT_TRUE(w1.ok()) << w1.status().ToString();

  // Node 4 fail-stops; the epoch check shrinks the epoch to the
  // respondents {0,1,2,3}.
  cluster.SetNodeUp(4, false);
  Status s = cluster.CheckEpochSync(0);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(cluster.node(0).epoch().list.ToVector(),
            (std::vector<NodeId>{0, 1, 2, 3}));

  // The protocol keeps serving writes and reads without node 4.
  auto w2 = cluster.WriteSyncRetry(1, 0, Update::Partial(1, {8}));
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  auto r = cluster.ReadSync(3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->data, (std::vector<uint8_t>{7, 8}));

  // Node 4 returns; a second epoch check readmits it (marked stale, then
  // caught up by propagation).
  cluster.SetNodeUp(4, true);
  s = cluster.CheckEpochSync(2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(cluster.node(2).epoch().list.ToVector(),
            (std::vector<NodeId>{0, 1, 2, 3, 4}));

  // A read coordinated by the readmitted node sees the current value.
  auto r4 = cluster.ReadSync(4);
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  EXPECT_EQ(r4->data, (std::vector<uint8_t>{7, 8}));
}

TEST(SocketTransportTest, ConcurrentCoordinatorsMakeProgress) {
  // Writers on distinct coordinators race for the same object from real
  // threads; conflict-retry must let every one land eventually.
  SocketCluster cluster(SmokeOptions());
  ASSERT_TRUE(cluster.Start().ok());

  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  std::vector<Status> results(kWriters, Status::OK());
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&cluster, &results, i] {
      auto w = cluster.WriteSyncRetry(
          NodeId{static_cast<uint32_t>(i)}, 0,
          Update::Partial(static_cast<uint64_t>(i), {uint8_t(i + 1)}),
          /*max_attempts=*/50);
      results[static_cast<size_t>(i)] = w.status();
    });
  }
  for (auto& t : writers) t.join();
  for (int i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(results[static_cast<size_t>(i)].ok())
        << "writer " << i << ": " << results[static_cast<size_t>(i)].ToString();
  }

  auto r = cluster.ReadSync(0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version, static_cast<storage::Version>(kWriters));
  EXPECT_EQ(std::vector<uint8_t>(r->data.begin(), r->data.begin() + kWriters),
            (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST(SocketTransportTest, ShardedMultiObjectClusterOverSockets) {
  // Sharded deployment over the real transport: objects live on
  // placement-chosen subsets with private epoch lineages.
  SocketClusterOptions o = SmokeOptions();
  o.sharded = true;
  o.num_objects = 16;
  o.replication_factor = 3;
  SocketCluster cluster(o);
  ASSERT_TRUE(cluster.Start().ok());
  const shard::ObjectTable* table = cluster.table();
  ASSERT_NE(table, nullptr);

  for (storage::ObjectId obj = 0; obj < o.num_objects; ++obj) {
    NodeId coord = table->placement(obj).ranking[0];
    auto w = cluster.WriteSyncRetry(
        coord, obj, Update::Total({static_cast<uint8_t>(obj), 0xAB}));
    ASSERT_TRUE(w.ok()) << "object " << obj << ": " << w.status().ToString();
    EXPECT_EQ(w->version, 1u);
    // Read back through a different home replica.
    NodeId reader = table->placement(obj).ranking[1];
    auto r = cluster.ReadSync(reader, obj);
    ASSERT_TRUE(r.ok()) << "object " << obj << ": " << r.status().ToString();
    EXPECT_EQ(r->data,
              (std::vector<uint8_t>{static_cast<uint8_t>(obj), 0xAB}));
  }

  // The group-wide epoch check has no meaning here and must not succeed.
  EXPECT_FALSE(cluster.CheckEpochSync(0).ok());
}

TEST(SocketTransportTest, ShardedScopedEpochCheckShrinksOneLineage) {
  SocketClusterOptions o = SmokeOptions();
  o.sharded = true;
  o.num_objects = 16;
  o.replication_factor = 3;
  SocketCluster cluster(o);
  ASSERT_TRUE(cluster.Start().ok());
  const shard::ObjectTable* table = cluster.table();
  ASSERT_NE(table, nullptr);

  // One object homed on node 4, one not — their lineages must move
  // independently.
  storage::ObjectId on4 = o.num_objects, off4 = o.num_objects;
  for (storage::ObjectId obj = 0; obj < o.num_objects; ++obj) {
    if (table->placement(obj).replicas.Contains(4)) {
      if (on4 == o.num_objects) on4 = obj;
    } else if (off4 == o.num_objects) {
      off4 = obj;
    }
  }
  ASSERT_LT(on4, o.num_objects);
  ASSERT_LT(off4, o.num_objects);

  cluster.SetNodeUp(4, false);
  NodeSet live_home = table->placement(on4).replicas;
  live_home.Erase(4);
  NodeId initiator = live_home.NthMember(0);
  Status s = cluster.CheckObjectEpochSync(initiator, on4);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(cluster.node(initiator).store(on4).epoch_number(), 1u);
  EXPECT_EQ(cluster.node(initiator).store(on4).epoch_list(), live_home);
  // The other object's lineage is untouched by node 4's failure.
  NodeId other = table->placement(off4).ranking[0];
  EXPECT_EQ(cluster.node(other).store(off4).epoch_number(), 0u);

  // Writes keep landing in the shrunken lineage.
  auto w = cluster.WriteSyncRetry(initiator, on4, Update::Total({5, 5}));
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  // Node 4 returns; a second scoped check readmits it.
  cluster.SetNodeUp(4, true);
  s = cluster.CheckObjectEpochSync(initiator, on4);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(cluster.node(initiator).store(on4).epoch_list(),
            table->placement(on4).replicas);
  auto r = cluster.ReadSync(live_home.NthMember(1), on4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->data, (std::vector<uint8_t>{5, 5}));
}

}  // namespace
}  // namespace dcp::harness
