// dcp_lint fixture: the sharded-cluster placement/workload RNG roots.
// The placement layer is pure hashing (no stream), but the sharded
// cluster harness owns ONE annotated seeded root for fault injection and
// workload arrivals; any other fresh stream in shard code is a
// determinism bug. Mirrors src/shard/ so the src-only rules see library
// code.

struct Rng {
  explicit Rng(unsigned long long seed) { (void)seed; }
  void Seed(unsigned long long seed) { (void)seed; }
  unsigned long long Next64() { return 0; }
};

struct ShardedClusterOptions {
  unsigned long long seed = 1;
};

// The blessed root: seeded once from the options, annotated with the
// standalone-line-above form — exactly how the real harness does it.
struct ShardedCluster {
  explicit ShardedCluster(const ShardedClusterOptions& options)
      // dcp-lint: allow(raw-rng)
      : rng_(options.seed) {}
  Rng rng_;
};

// A per-object "convenience" stream without the annotation: caught. This
// is the regression the fixture pins — placement must stay hash-pure and
// every shard-layer stream must be an annotated, seeded root.
struct ObjectShuffler {
  explicit ObjectShuffler(unsigned long long object_id)
      : rng_(object_id) {}  // dcp-lint-expect: raw-rng
  Rng rng_;
};

// Re-seeding a member stream from another stream is also a new root
// unless annotated.
struct PerObjectFaults {
  void Ensure(Rng& base) {
    fault_rng_.Seed(base.Next64());  // dcp-lint-expect: raw-rng
  }
  Rng fault_rng_{0};  // dcp-lint-expect: raw-rng
};

// Clean: handing an existing stream around is not a new root.
struct MuxDriver {
  explicit MuxDriver(Rng rng) : rng_(rng) {}
  Rng rng_;
};
