// dcp_lint fixture: the unordered-trace rule — iteration whose order is
// the container's table order must not feed a trace/metric/message/WAL
// sink directly.
#include <string>
#include <unordered_map>
#include <vector>

struct Tracer {
  void Instant(const std::string& name) { (void)name; }
};
Tracer& tracer();

struct Wal {
  void Append(unsigned char type, int payload) {
    (void)type;
    (void)payload;
  }
};

template <typename T>
struct FlatMap {
  template <typename Fn>
  void ForEach(Fn&& fn) {
    (void)fn;
  }
};

void DumpCounts(const std::unordered_map<int, int>& counts) {
  for (const auto& kv : counts) {  // dcp-lint-expect: unordered-trace
    tracer().Instant(std::to_string(kv.first));
  }
}

void DumpFlat(FlatMap<int>& table, Wal& wal) {
  table.ForEach([&](unsigned long long k, int v) {  // dcp-lint-expect: unordered-trace
    wal.Append(static_cast<unsigned char>(k), v);
  });
}

// Clean: collect in table order, sort, then emit in canonical order.
void DumpSorted(const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  for (const auto& kv : counts) {
    keys.push_back(kv.first);
  }
  // (sort elided) — the emitting loop walks the sorted vector.
  for (int k : keys) {
    tracer().Instant(std::to_string(k));
  }
}
