// dcp_lint fixture: the rpc-dedup rule — installing an RPC service or an
// extension handler requires a `// dcp-lint: rpc-dedup(<mechanism>)`
// annotation naming why duplicate delivery of a request is safe.
struct RpcService {};

struct RpcRuntime {
  void set_service(RpcService* service) { (void)service; }
};

struct Node {
  void set_extension_handler(int handler) { (void)handler; }
};

struct UnannotatedNode {
  void Init() {
    rpc_.set_service(&service_);  // dcp-lint-expect: rpc-dedup
  }
  RpcRuntime rpc_;
  RpcService service_;
};

struct UnannotatedDaemon {
  explicit UnannotatedDaemon(Node* node) {
    node->set_extension_handler(1);  // dcp-lint-expect: rpc-dedup
  }
};

struct AnnotatedNode {
  void Init() {
    // Duplicate-safe: the runtime reply cache resends the remembered
    // reply for a duplicated request.  // dcp-lint: rpc-dedup(reply-cache)
    rpc_.set_service(&service_);
  }
  RpcRuntime rpc_;
  RpcService service_;
};
