// dcp_lint fixture: the detached-thread rule — detach() anywhere (a
// detached thread has no join point and races teardown), and
// std::thread members in classes with no destructor to join them.
#include <thread>
#include <vector>

void FireAndForget() {
  std::thread t([] {});
  t.detach();  // dcp-lint-expect: detached-thread
}

// Members with no destructor: nothing can be joining these.
class NoDtorPool {
 public:
  void Start();

 private:
  std::thread io_thread_;  // dcp-lint-expect: detached-thread
  std::vector<std::thread> workers_;  // dcp-lint-expect: detached-thread
};

// Clean: the destructor is the join point.
class JoiningPool {
 public:
  ~JoiningPool() {
    if (io_thread_.joinable()) io_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  std::thread io_thread_;
  std::vector<std::thread> workers_;
};

// Clean: function-local thread that is joined.
void LocalJoined() {
  std::thread t([] {});
  t.join();
}

// Clean: suppressed — a process-lifetime daemon sanctioned at the site.
void SuppressedDetach() {
  std::thread watchdog([] {});
  // dcp-lint: allow(detached-thread) — process-lifetime watchdog; exits
  // with the process by design.
  watchdog.detach();
}
