// dcp_lint fixture: the resolve-order rule — a kResolve append must be
// preceded, within the same function, by the effect records it covers
// (DESIGN.md section 8: effects first, kResolve last, so a torn WAL tail
// that keeps the resolve also kept every effect).
struct DurableStore {
  void LogUpdate(int object, int version) {
    (void)object;
    (void)version;
  }
  void LogDecide(int owner, int outcome) {
    (void)owner;
    (void)outcome;
  }
  void LogResolve(int owner, int outcome) {
    (void)owner;
    (void)outcome;
  }
};

void ResolveFirst(DurableStore* durable, int owner) {
  durable->LogResolve(owner, 1);  // dcp-lint-expect: resolve-order
  durable->LogUpdate(owner, 2);
}

// Clean: the outcome (kDecide) and the update land before the resolve.
void EffectsThenResolve(DurableStore* durable, int owner) {
  durable->LogDecide(owner, 1);
  durable->LogUpdate(owner, 2);
  durable->LogResolve(owner, 1);
}
