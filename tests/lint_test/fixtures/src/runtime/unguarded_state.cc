// TSA fixture: a deliberately racy read of a guarded member. The
// thread-safety lane (clang -Wthread-safety -Wthread-safety-beta
// -Werror) must REFUSE to compile this file as-is, and must ACCEPT it
// when compiled with -DDCP_TSA_FIXTURE_FIXED (which adds the missing
// lock). Driven by tests/lint_test/check_tsa_fixture.py; see DESIGN.md
// section 13. Under gcc the annotations expand to nothing and the file
// compiles either way — the check script skips when clang is absent.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dcp {

class Counter {
 public:
  void Bump() {
    util::MutexLock lock(&mu_);
    ++guarded_;
  }

  // BUG (by design): reads `guarded_` without holding `mu_`. Clang TSA
  // rejects this ("reading variable 'guarded_' requires holding mutex
  // 'mu_'") unless the fixed variant takes the lock first.
  [[nodiscard]] uint64_t Peek() const {
#ifdef DCP_TSA_FIXTURE_FIXED
    util::MutexLock lock(&mu_);
#endif
    return guarded_;
  }

 private:
  mutable util::Mutex mu_;
  uint64_t guarded_ DCP_GUARDED_BY(mu_) = 0;
};

}  // namespace dcp

// The class is exercised by compilation alone; reference it so the
// fixture also builds as a standalone translation unit.
int main() {
  dcp::Counter c;
  c.Bump();
  return static_cast<int>(c.Peek() & 1);
}
