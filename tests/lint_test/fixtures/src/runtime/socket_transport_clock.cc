// dcp_lint fixture: the wall-clock rule inside a subdirectory that
// mirrors the real src/runtime/ tree. The actual socket transport is
// ALLOWED to read the monotonic clock — but only under an explicit
// `// dcp-lint: allow(wall-clock)` carve-out. This fixture proves that
// an unannotated clock read in runtime code is still a finding (the
// carve-out is per-line, not per-directory), and that the fixture
// runner discovers files below the top level of fixtures/src/.
#include <chrono>

namespace dcp::rt {

double PollDeadlineMs() {
  auto now = std::chrono::steady_clock::now();  // dcp-lint-expect: wall-clock
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

// Clean under the carve-out: this is the annotated form the real
// transport uses.
double AnnotatedPollDeadlineMs() {
  // dcp-lint: allow(wall-clock)
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace dcp::rt
