// dcp_lint fixture: the bare-mutex rule — raw std sync primitives as
// class members (invisible to clang Thread Safety Analysis), and
// util::Mutex members that guard no annotated state.
#include <condition_variable>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <vector>

#define DCP_GUARDED_BY(x)

namespace util {
class Mutex {};
class CondVar {};
}  // namespace util

class BadQueue {
 public:
  void Push(int v);

 private:
  std::mutex mu_;  // dcp-lint-expect: bare-mutex
  std::condition_variable cv_;  // dcp-lint-expect: bare-mutex
  std::deque<int> items_;
};

class BadSharedIndex {
  mutable std::shared_mutex index_mu_;  // dcp-lint-expect: bare-mutex
  std::vector<int> index_;
};

// A wrapper mutex that provably guards nothing: either dead weight or,
// more likely, the members it protects were never annotated.
class UnusedGuard {
  util::Mutex mu_;  // dcp-lint-expect: bare-mutex
  int counter_ = 0;
};

// Clean: wrapper primitives with annotated guarded state.
class GoodQueue {
 public:
  void Push(int v);

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<int> items_ DCP_GUARDED_BY(mu_);
};

// Clean: function-local std primitives are std-idiomatic and irrelevant
// to the analysis (TSA only tracks capabilities that outlive a call).
void LocalsAreFine() {
  std::mutex local_mu;
  std::condition_variable local_cv;
  (void)local_mu;
  (void)local_cv;
}

// Clean: suppressed at the declaration site.
class Suppressed {
  // dcp-lint: allow(bare-mutex) — FFI boundary; the external API hands
  // this type a std::mutex it must keep verbatim.
  std::mutex ffi_mu_;
};
