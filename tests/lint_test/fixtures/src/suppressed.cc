// dcp_lint fixture: every violation below carries a suppression, so this
// file must lint clean. Exercises all three grammar forms: trailing
// comment, standalone comment on the line above, and file-wide.
// dcp-lint: allow-file(unordered-trace)
#include <chrono>
#include <unordered_map>

struct Rng {
  explicit Rng(unsigned long long seed) { (void)seed; }
  void Seed(unsigned long long seed) { (void)seed; }
  unsigned long long Next64() { return 1; }
};

struct Tracer {
  void Instant(int v) { (void)v; }
};
Tracer& tracer();

struct DurableStore {
  void LogResolve(int owner, int outcome) {
    (void)owner;
    (void)outcome;
  }
};

struct RpcRuntime {
  void set_service(void* service) { (void)service; }
};

struct EventId {
  unsigned long long seq = 0;
};

struct Simulator {
  template <typename Fn>
  EventId Schedule(double delay, Fn&& fn) {
    (void)delay;
    (void)fn;
    return {};
  }
};

// Trailing-comment form.
double WallSeconds() {
  auto now = std::chrono::steady_clock::now();  // dcp-lint: allow(wall-clock)
  (void)now;
  return 0.0;
}

// Standalone-line-above form (applies to the next code line), plus a
// comma-separated rule list on the re-seed below.
void MakeStream(unsigned long long seed, Rng& other) {
  // dcp-lint: allow(raw-rng)
  Rng rng(seed);
  rng.Seed(other.Next64());  // dcp-lint: allow(raw-rng, wall-clock)
}

// Replay path: resolves are re-appended verbatim from the scanned tail,
// so the effects they cover are already durable.
void Recover(DurableStore* durable) {
  durable->LogResolve(1, 1);  // dcp-lint: allow(resolve-order)
}

// The rpc-dedup rule is satisfied by its own annotation form.
struct AnnotatedNode {
  void Init() {
    // dcp-lint: rpc-dedup(reply-cache)
    rpc_.set_service(nullptr);
  }
  RpcRuntime rpc_;
};

// raw-this, suppressed with the standalone form.
struct Task {
  void Arm() {
    // dcp-lint: allow(raw-this)
    pending_ = sim_->Schedule(1.0, [this] { Arm(); });
  }
  Simulator* sim_ = nullptr;
  EventId pending_;
};

// Covered by the file-wide allow at the top of the file.
void Dump(const std::unordered_map<int, int>& counts) {
  for (const auto& kv : counts) {
    tracer().Instant(kv.second);
  }
}
