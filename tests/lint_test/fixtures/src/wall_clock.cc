// dcp_lint fixture: the wall-clock rule. Every tagged line must be
// reported with exactly the rule id in its dcp-lint-expect comment; the
// untagged lines must stay clean (sim-time lookalikes).
#include <chrono>
#include <ctime>

struct Simulator {
  double Now() const { return 0; }
};

double WallClockSoup(const Simulator& sim) {
  auto sys = std::chrono::system_clock::now();  // dcp-lint-expect: wall-clock
  auto mono = std::chrono::steady_clock::now();  // dcp-lint-expect: wall-clock
  auto hi =
      std::chrono::high_resolution_clock::now();  // dcp-lint-expect: wall-clock
  long raw = time(nullptr);  // dcp-lint-expect: wall-clock
  struct timespec ts;
  clock_gettime(0, &ts);  // dcp-lint-expect: wall-clock
  // Clean: virtual time from the simulator, and identifiers that merely
  // contain the word "time".
  double virtual_now = sim.Now();
  double op_started_time = virtual_now;
  (void)sys;
  (void)mono;
  (void)hi;
  (void)raw;
  return static_cast<double>(op_started_time);
}
