// dcp_lint fixture: the raw-this rule — the closure of a cancellable
// scheduled event (EventId stored into a member) must not capture raw
// `this`: if the callback destroys the owner mid-fire, the rearm path
// touches freed memory (the PeriodicTask use-after-free class).
struct EventId {
  unsigned long long seq = 0;
};

struct Simulator {
  template <typename Fn>
  EventId Schedule(double delay, Fn&& fn) {
    (void)delay;
    (void)fn;
    return {};
  }
};

struct RepeatingTask {
  void Arm() {
    pending_ = sim_->Schedule(period_, [this] { Fire(); });  // dcp-lint-expect: raw-this
  }
  // Clean: the id never outlives the statement's scope as a member —
  // a local EventId is not cancellable from outside this call.
  void FireOnce() {
    EventId id = sim_->Schedule(period_, [this] { Fire(); });
    (void)id;
  }
  void Fire() {}

  Simulator* sim_ = nullptr;
  double period_ = 1.0;
  EventId pending_;
};
