// dcp_lint fixture: the lock-across-syscall rule — a blocking syscall
// lexically below a lock acquisition in the same block stalls every
// thread behind that lock for the syscall's duration. The analysis is
// deliberately conservative (no unlock tracking); sanctioned
// drop/reacquire patterns are annotated at the syscall site.
//
// The stub mutex members here deliberately guard nothing:
// dcp-lint: allow-file(bare-mutex)

struct msghdr;
struct pollfd {
  int fd;
  short events;
  short revents;
};

extern "C" {
long sendmsg(int fd, const msghdr* mh, int flags);
long send(int fd, const void* buf, unsigned long len, int flags);
int poll(pollfd* fds, unsigned long nfds, int timeout);
}

namespace util {
class Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
}  // namespace util

class Flusher {
 public:
  // Scoped guard held across the send syscall: one slow peer wedges
  // every other sender queued behind out_mu_.
  void BadScopedFlush(int fd, const msghdr* mh) {
    util::MutexLock lock(&out_mu_);
    (void)sendmsg(fd, mh, 0);  // dcp-lint-expect: lock-across-syscall
  }

  // Manual lock with the syscall before the unlock.
  void BadManualFlush(int fd, const void* buf, unsigned long len) {
    out_mu_.Lock();
    (void)send(fd, buf, len, 0);  // dcp-lint-expect: lock-across-syscall
    out_mu_.Unlock();
  }

  // Waiting for POLLOUT while holding the queue lock.
  void BadPollWait(int fd) {
    util::MutexLock lock(&out_mu_);
    pollfd pfd{fd, 1, 0};
    (void)poll(&pfd, 1, 50);  // dcp-lint-expect: lock-across-syscall
  }

  // Clean: the lock's block closes before the syscall.
  void GoodFlushOutsideLock(int fd, const msghdr* mh) {
    {
      util::MutexLock lock(&out_mu_);
      dirty_ = false;
    }
    (void)sendmsg(fd, mh, 0);
  }

  // Clean: sanctioned drop/reacquire — the lock is NOT held at the
  // syscall, and the allow annotation documents exactly that.
  void AllowedFlusherDrop(int fd, const msghdr* mh) {
    out_mu_.Lock();
    out_mu_.Unlock();
    // dcp-lint: allow(lock-across-syscall) — out_mu_ dropped above and
    // reacquired below; a flushing flag keeps the drain exclusive.
    (void)sendmsg(fd, mh, 0);
    out_mu_.Lock();
    out_mu_.Unlock();
  }

  // Clean: the syscall precedes the acquisition.
  void SyscallBeforeLockIsClean(int fd, const msghdr* mh) {
    (void)sendmsg(fd, mh, 0);
    util::MutexLock lock(&out_mu_);
    dirty_ = false;
  }

 private:
  util::Mutex out_mu_;
  bool dirty_ = false;
};
