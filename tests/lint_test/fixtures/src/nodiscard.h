// dcp_lint fixture: the nodiscard rule — Status/Result-returning APIs
// declared in src/ headers must be [[nodiscard]] so a dropped error is a
// compiler warning, not a silent success.
#ifndef DCP_LINT_FIXTURE_NODISCARD_H_
#define DCP_LINT_FIXTURE_NODISCARD_H_

class Status {};
template <typename T>
class Result {};

class Api {
 public:
  Status Mutate(int arg);  // dcp-lint-expect: nodiscard
  Result<int> Fetch();  // dcp-lint-expect: nodiscard
  virtual Result<int> Handle(int from);  // dcp-lint-expect: nodiscard

  // Clean: already annotated (same line and line-above forms).
  [[nodiscard]] Status Checked(int arg);
  [[nodiscard]]
  Result<int> CheckedWrapped(int from, int to, int third_parameter_for_width);

  // Clean: not a by-value Status/Result return.
  const Status& last_status() const;
  void Reset();

 private:
  Status last_;
};

Status FreeMutation(int arg);  // dcp-lint-expect: nodiscard

#endif  // DCP_LINT_FIXTURE_NODISCARD_H_
