// dcp_lint fixture: the raw-rng rule — std non-deterministic generators
// anywhere, plus Rng stream creation/re-seeding in library code without an
// allow(raw-rng) annotation.
#include <cstdlib>
#include <random>

struct Rng {
  explicit Rng(unsigned long long seed) { (void)seed; }
  void Seed(unsigned long long seed) { (void)seed; }
  unsigned long long Next64() { return 0; }
};

int StdGenerators() {
  std::random_device rd;  // dcp-lint-expect: raw-rng
  std::mt19937 gen(12345);  // dcp-lint-expect: raw-rng
  srand(42);  // dcp-lint-expect: raw-rng
  return std::rand();  // dcp-lint-expect: raw-rng
}

void FreshStream(unsigned long long seed) {
  Rng rng(seed);  // dcp-lint-expect: raw-rng
  (void)rng;
}

struct FaultModel {
  Rng fault_rng_{0};  // dcp-lint-expect: raw-rng
  void Ensure(Rng& base) {
    fault_rng_.Seed(base.Next64());  // dcp-lint-expect: raw-rng
  }
};

// Clean: moving an existing stream is not a new root.
struct Holder {
  explicit Holder(Rng rng) : rng_(rng) {}
  Rng rng_;
};
