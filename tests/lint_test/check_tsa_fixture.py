#!/usr/bin/env python3
"""Proves the Thread Safety Analysis lane has teeth.

Compiles tests/lint_test/fixtures/src/runtime/unguarded_state.cc — a
deliberately racy read of a DCP_GUARDED_BY member — under clang with the
exact flags the DCP_THREAD_SAFETY CMake option uses, and asserts:

  1. the racy variant FAILS to compile, with the canonical TSA
     diagnostic ("requires holding mutex") in stderr;
  2. the -DDCP_TSA_FIXTURE_FIXED variant (which takes the lock) PASSES.

Together these catch the two ways the lane can silently rot: annotations
that stop expanding (everything compiles, nothing is analyzed) and flags
that stop erroring (diagnoses but never fails CI).

Exit codes: 0 = both assertions hold, 1 = an assertion failed,
77 = no clang on PATH (ctest SKIP_RETURN_CODE; gcc has no equivalent
analysis, so there is nothing to check).
"""

import os
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
FIXTURE = os.path.join(REPO, "tests", "lint_test", "fixtures", "src",
                       "runtime", "unguarded_state.cc")

TSA_FLAGS = [
    "-std=c++20", "-fsyntax-only",
    "-Wthread-safety", "-Wthread-safety-beta",
    "-Werror=thread-safety", "-Werror=thread-safety-beta",
    "-I", os.path.join(REPO, "src"),
]

# The diagnostic text TSA emits for an unguarded read; pinned loosely so
# clang wording drift across versions does not flake the check.
EXPECT_DIAG = "requires holding mutex"


def find_clang():
    env = os.environ.get("CLANGXX")
    if env and shutil.which(env):
        return env
    candidates = ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]
    for c in candidates:
        if shutil.which(c):
            return c
    return None


def compile_fixture(clang, extra):
    proc = subprocess.run([clang] + TSA_FLAGS + extra + [FIXTURE],
                          capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main():
    clang = find_clang()
    if clang is None:
        print("SKIP: no clang on PATH (set CLANGXX to override); "
              "thread-safety analysis needs clang")
        return 77

    failures = 0

    rc, stderr = compile_fixture(clang, [])
    if rc == 0:
        print("FAIL: racy fixture compiled clean — the TSA lane would "
              "never fire (annotations not expanding, or flags not "
              "erroring?)")
        failures += 1
    elif EXPECT_DIAG not in stderr:
        print("FAIL: racy fixture failed for the wrong reason "
              f"(no '{EXPECT_DIAG}' diagnostic). stderr:\n{stderr}")
        failures += 1
    else:
        print(f"PASS: racy fixture rejected by {clang} with the expected "
              "TSA diagnostic")

    rc, stderr = compile_fixture(clang, ["-DDCP_TSA_FIXTURE_FIXED"])
    if rc != 0:
        print("FAIL: fixed fixture (lock taken) did not compile — the "
              f"flags are over-firing. stderr:\n{stderr}")
        failures += 1
    else:
        print("PASS: fixed fixture compiles clean under the same flags")

    if failures:
        return 1
    print("tsa fixture check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
