#!/usr/bin/env python3
"""Fixture tests for tools/dcp_lint.

Each file under fixtures/src/ tags its intentional violations with a
trailing `// dcp-lint-expect: <rule>` comment. This runner lints every
fixture (with --root pointing at the fixtures directory, so src-only
rules see the files as library code) and asserts that the reported
(line, rule) pairs match the tags exactly — no missing findings, no
extras, no off-by-one lines. suppressed.cc carries real violations under
every suppression form and must come back completely clean.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "dcp_lint")
FIXTURES = os.path.join(HERE, "fixtures")

_EXPECT_RE = re.compile(r"//\s*dcp-lint-expect:\s*([\w\-]+)")
_FINDING_RE = re.compile(r"^(.+?):(\d+): warning: .* \[([\w\-]+)\]$")


def expected_findings(path):
    expects = set()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = _EXPECT_RE.search(line)
            if m:
                expects.add((lineno, m.group(1)))
    return expects


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, LINT] + args,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = _FINDING_RE.match(line)
        if m:
            findings.add((int(m.group(2)), m.group(3)))
    return proc.returncode, findings, proc.stdout + proc.stderr


def discover_fixtures(fixture_dir):
    """Fixture paths relative to fixture_dir, recursing into
    subdirectories (fixtures may mirror the real src/ tree, e.g.
    src/runtime/)."""
    names = []
    for dirpath, _, filenames in os.walk(fixture_dir):
        for filename in filenames:
            full = os.path.join(dirpath, filename)
            names.append(os.path.relpath(full, fixture_dir))
    return sorted(names)


def main():
    failures = []
    fixture_dir = os.path.join(FIXTURES, "src")
    names = discover_fixtures(fixture_dir)
    if not names:
        print("FAIL: no fixtures found in", fixture_dir)
        return 1

    for name in names:
        path = os.path.join(fixture_dir, name)
        expects = expected_findings(path)
        rc, findings, output = run_lint(
            ["--root", FIXTURES, os.path.join("src", name)])
        label = f"fixture {name}"
        if findings != expects:
            missing = sorted(expects - findings)
            extra = sorted(findings - expects)
            failures.append(
                f"{label}: finding mismatch\n"
                f"  missing (expected but not reported): {missing}\n"
                f"  extra (reported but not expected):   {extra}\n"
                f"  lint output:\n{output}")
            continue
        want_rc = 1 if expects else 0
        if rc != want_rc:
            failures.append(
                f"{label}: exit code {rc}, want {want_rc}\n{output}")
            continue
        print(f"PASS: {label} ({len(expects)} finding(s))")

    # --rule filtering keeps only the named rule's findings.
    wall = os.path.join(fixture_dir, "wall_clock.cc")
    if os.path.exists(wall):
        rc, findings, output = run_lint(
            ["--root", FIXTURES, "--rule", "wall-clock", "src/wall_clock.cc"])
        if any(rule != "wall-clock" for _, rule in findings) or not findings:
            failures.append(
                f"--rule filter: got {sorted(findings)}\n{output}")
        else:
            print("PASS: --rule wall-clock filter")

    # Unknown rule name is a usage error, not silence.
    rc, _, _ = run_lint(["--rule", "no-such-rule"])
    if rc != 2:
        failures.append(f"--rule no-such-rule: exit code {rc}, want 2")
    else:
        print("PASS: unknown rule rejected")

    if failures:
        print()
        for f in failures:
            print("FAIL:", f)
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall lint fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
