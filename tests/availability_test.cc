#include "analysis/availability.h"

#include <gtest/gtest.h>

#include "coterie/majority.h"

namespace dcp::analysis {
namespace {

constexpr Real kP = 0.95L;        // The paper's operating point.
constexpr Real kLambda = 1.0L;    // mu/lambda = 19 gives p = 0.95.
constexpr Real kMu = 19.0L;

TEST(StaticGrid, Table1StaticColumn) {
  // Table 1: best static grid unavailability (x 1e-6), from [3].
  struct Row {
    uint32_t n, rows, cols;
    double unavail_e6;
  };
  const Row rows[] = {
      {9, 3, 3, 3268.59},  {12, 3, 4, 912.25}, {15, 3, 5, 683.60},
      {16, 4, 4, 1208.75}, {20, 4, 5, 250.82}, {24, 4, 6, 78.23},
      {30, 5, 6, 135.90},
  };
  for (const Row& r : rows) {
    BestGridResult best = BestStaticGrid(r.n, kP);
    EXPECT_EQ(best.dims.rows, r.rows) << "N=" << r.n;
    EXPECT_EQ(best.dims.cols, r.cols) << "N=" << r.n;
    EXPECT_NEAR(static_cast<double>(best.write_unavailability) * 1e6,
                r.unavail_e6, 0.01)
        << "N=" << r.n;
  }
}

TEST(DynamicGrid, Table1DynamicColumn) {
  // Table 1: dynamic grid unavailability. 9 -> 0.18e-6, 12 -> 0.6e-10,
  // 15 -> 1.564e-14, 16 -> "negligible" (we check < 1e-14).
  auto u = [](uint32_t n) {
    auto a = DynamicGridAvailability(n, kLambda, kMu);
    EXPECT_TRUE(a.ok());
    return static_cast<double>(1.0L - *a);
  };
  EXPECT_NEAR(u(9) * 1e6, 0.18, 0.005);
  EXPECT_NEAR(u(12) * 1e10, 0.6, 0.005);
  EXPECT_NEAR(u(15) * 1e14, 1.564, 0.005);
  EXPECT_LT(u(16), 1e-14);
}

TEST(DynamicGrid, ImprovementIsOrdersOfMagnitude) {
  for (uint32_t n : {9u, 12u, 15u}) {
    Real static_u = BestStaticGrid(n, kP).write_unavailability;
    auto dyn = DynamicGridAvailability(n, kLambda, kMu);
    ASSERT_TRUE(dyn.ok());
    Real dynamic_u = 1.0L - *dyn;
    EXPECT_GT(static_u / dynamic_u, 1e3) << "N=" << n;
  }
}

TEST(StaticGrid, ReadAvailabilityExceedsWrite) {
  for (uint32_t n : {9u, 16u, 25u}) {
    coterie::GridDimensions dims = coterie::DefineGrid(n);
    Real read = StaticGridReadAvailability(dims, kP);
    Real write = StaticGridWriteAvailability(dims, kP, true);
    EXPECT_GT(read, write);
    EXPECT_GT(read, 0.99L);
  }
}

TEST(StaticGrid, OptimizationHelpsWhenColumnsAreShort) {
  coterie::GridDimensions dims = coterie::DefineGrid(7);  // 3x3, b = 2.
  Real with = StaticGridWriteAvailability(dims, kP, true);
  Real without = StaticGridWriteAvailability(dims, kP, false);
  EXPECT_GT(with, without);
}

TEST(StaticGrid, MatchesEnumeratedAvailability) {
  // Closed form vs brute-force enumeration through the real coterie rule.
  coterie::GridCoterie grid;
  for (uint32_t n : {4u, 6u, 9u, 12u}) {
    Real closed = StaticGridWriteAvailability(coterie::DefineGrid(n), kP,
                                              /*optimized=*/true);
    Real brute = EnumeratedAvailability(grid, n, kP, /*read=*/false);
    EXPECT_NEAR(static_cast<double>(closed), static_cast<double>(brute),
                1e-12)
        << "N=" << n;
    Real closed_r = StaticGridReadAvailability(coterie::DefineGrid(n), kP);
    Real brute_r = EnumeratedAvailability(grid, n, kP, /*read=*/true);
    EXPECT_NEAR(static_cast<double>(closed_r), static_cast<double>(brute_r),
                1e-12);
  }
}

TEST(Majority, MatchesEnumeratedAvailability) {
  coterie::MajorityCoterie majority;
  for (uint32_t n : {3u, 5u, 9u, 12u}) {
    Real closed = MajorityWriteAvailability(n, kP);
    Real brute = EnumeratedAvailability(majority, n, kP, false);
    EXPECT_NEAR(static_cast<double>(closed), static_cast<double>(brute),
                1e-12)
        << "N=" << n;
  }
}

TEST(DynamicChain, MajorityBeatsGridSlightly) {
  // Dynamic majority survives to 2-node epochs; dynamic grid only to 3.
  for (uint32_t n : {9u, 12u}) {
    auto grid = DynamicGridAvailability(n, kLambda, kMu);
    auto maj = DynamicMajorityAvailability(n, kLambda, kMu);
    ASSERT_TRUE(grid.ok() && maj.ok());
    EXPECT_GT(*maj, *grid);
  }
}

TEST(DynamicChain, MoreNodesMoreAvailability) {
  Real prev = 0;
  for (uint32_t n = 4; n <= 14; ++n) {
    auto a = DynamicGridAvailability(n, kLambda, kMu);
    ASSERT_TRUE(a.ok());
    EXPECT_GT(*a, prev) << "N=" << n;
    prev = *a;
  }
}

TEST(DynamicChain, StructureMatchesFigure3) {
  DynamicChain dc = BuildDynamicEpochChain(9, kLambda, kMu, 3);
  // A_3..A_9 available states, plus 3 x 7 unavailable states.
  EXPECT_EQ(dc.available_states.size(), 7u);
  EXPECT_EQ(dc.chain.NumStates(), 7u + 3u * 7u);
  // Spot-check transitions: A_9 loses a node at rate 9*lambda.
  EXPECT_EQ(dc.chain.ExitRate(dc.available_states.back()),
            9 * kLambda);
}

TEST(SiteModel, MonteCarloAgreesWithChainAtModerateP) {
  // At p = 0.7 unavailability is large enough for Monte Carlo to see.
  const Real lambda = 3.0L, mu = 7.0L;  // p = 0.7.
  coterie::GridCoterie grid;
  Rng rng(2024);
  SiteModelResult sim =
      SimulateDynamicSiteModel(grid, 9, lambda, mu, 300000.0L, &rng);
  auto chain = DynamicEpochAvailability(9, lambda, mu, 3);
  ASSERT_TRUE(chain.ok());
  // The paper's count-based chain assumes every epoch of >= 4 nodes
  // tolerates any single failure. The set-based truth disagrees at
  // epoch size 5 (the 2x3 grid's third column holds a single node whose
  // failure blocks all quorums), so at p = 0.7 the chain overestimates
  // availability by a few points. See EXPERIMENTS.md.
  EXPECT_NEAR(static_cast<double>(sim.availability),
              static_cast<double>(*chain), 0.07);
  EXPECT_LT(sim.availability, *chain);  // The bias has a known sign.
  EXPECT_GT(sim.epoch_changes, 0u);
}

TEST(SiteModel, StaticSimulationAgreesWithClosedForm) {
  const Real lambda = 3.0L, mu = 7.0L;
  coterie::GridCoterie grid;
  Rng rng(77);
  SiteModelResult sim =
      SimulateStaticSiteModel(grid, 9, lambda, mu, 200000.0L, &rng);
  Real closed = StaticGridWriteAvailability(coterie::DefineGrid(9),
                                            mu / (lambda + mu), true);
  EXPECT_NEAR(static_cast<double>(sim.availability),
              static_cast<double>(closed), 0.01);
}

TEST(SiteModel, DynamicStrictlyBeatsStatic) {
  const Real lambda = 3.0L, mu = 7.0L;
  coterie::GridCoterie grid;
  Rng rng1(1), rng2(2);
  SiteModelResult dyn =
      SimulateDynamicSiteModel(grid, 9, lambda, mu, 100000.0L, &rng1);
  SiteModelResult sta =
      SimulateStaticSiteModel(grid, 9, lambda, mu, 100000.0L, &rng2);
  EXPECT_GT(dyn.availability, sta.availability);
}

}  // namespace
}  // namespace dcp::analysis
