// Additional analysis-layer tests: chain structure across parameters,
// closed-form cross-checks for the column-safe layout, read-availability
// plumbing of the site-model simulation, and argument validation.

#include <gtest/gtest.h>

#include "analysis/availability.h"
#include "coterie/grid.h"
#include "coterie/majority.h"

namespace dcp::analysis {
namespace {

TEST(DynamicChain, StateCountFormula) {
  for (uint32_t n : {4u, 9u, 20u}) {
    for (uint32_t critical : {2u, 3u}) {
      if (n < critical) continue;
      DynamicChain dc = BuildDynamicEpochChain(n, 1.0L, 19.0L, critical);
      size_t expected =
          (n - critical + 1) + critical * (n - critical + 1);
      EXPECT_EQ(dc.chain.NumStates(), expected)
          << "n=" << n << " critical=" << critical;
      EXPECT_EQ(dc.available_states.size(), n - critical + 1u);
    }
  }
}

TEST(DynamicChain, StationaryDistributionSumsToOne) {
  DynamicChain dc = BuildDynamicEpochChain(12, 1.0L, 19.0L, 3);
  auto pi = dc.chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  Real sum = 0;
  for (Real p : *pi) {
    sum += p;
    EXPECT_GE(static_cast<double>(p), -1e-18);  // No negative mass.
  }
  EXPECT_NEAR(static_cast<double>(sum), 1.0, 1e-15);
}

TEST(DynamicChain, RejectsTooFewNodes) {
  EXPECT_FALSE(DynamicEpochAvailability(2, 1.0L, 19.0L, 3).ok());
  EXPECT_TRUE(DynamicEpochAvailability(3, 1.0L, 19.0L, 3).ok());
}

TEST(DynamicChain, AvailabilityIncreasesWithRepairRate) {
  Real prev = 0;
  for (Real mu : {4.0L, 9.0L, 19.0L, 99.0L}) {
    auto a = DynamicGridAvailability(9, 1.0L, mu);
    ASSERT_TRUE(a.ok());
    EXPECT_GT(*a, prev);
    prev = *a;
  }
}

TEST(ColumnSafeClosedForm, MatchesEnumeration) {
  coterie::GridOptions opts;
  opts.layout = coterie::GridLayout::kColumnSafe;
  coterie::GridCoterie safe(opts);
  for (uint32_t n : {3u, 5u, 9u, 11u}) {
    Real closed = StaticGridWriteAvailability(
        coterie::DefineGridColumnSafe(n), 0.9L, /*optimized=*/true);
    Real brute = EnumeratedAvailability(safe, n, 0.9L, /*read=*/false);
    EXPECT_NEAR(static_cast<double>(closed), static_cast<double>(brute),
                1e-12)
        << "N=" << n;
  }
}

TEST(SiteModel, ReadAvailabilityExceedsWriteAvailability) {
  // With the short-column optimization, epochs shrink exactly when a
  // read quorum would survive, so reads and writes die together; the
  // read advantage shows on the UNOPTIMIZED grid (a stuck 3-node epoch
  // still serves reads while two of its members are up).
  coterie::GridOptions opts;
  opts.short_column_optimization = false;
  coterie::GridCoterie grid_unopt(opts);
  Rng rng(31);
  SiteModelResult sim = SimulateDynamicSiteModel(grid_unopt, 9, 1.0L, 4.0L,
                                                 200000.0L, &rng);
  EXPECT_GT(sim.read_availability, sim.availability);
  EXPECT_GT(sim.read_availability, 0.9L);  // p = 0.8 here.

  // Optimized grid: read availability still at least write availability.
  coterie::GridCoterie grid;
  Rng rng2(31);
  SiteModelResult sim2 =
      SimulateDynamicSiteModel(grid, 9, 1.0L, 4.0L, 200000.0L, &rng2);
  EXPECT_GE(sim2.read_availability, sim2.availability);
}

TEST(SiteModel, StaticReadMatchesClosedForm) {
  coterie::GridCoterie grid;
  Rng rng(32);
  Real p = 0.8L;
  SiteModelResult sim = SimulateStaticSiteModel(grid, 9, 1.0L,
                                                p / (1 - p), 200000.0L, &rng);
  Real closed = StaticGridReadAvailability(coterie::DefineGrid(9), p);
  EXPECT_NEAR(static_cast<double>(sim.read_availability),
              static_cast<double>(closed), 0.01);
}

TEST(SiteModel, MajorityReadEqualsWrite) {
  // With read = write = majority, the two availabilities coincide.
  coterie::MajorityCoterie majority;
  Rng rng(33);
  SiteModelResult sim = SimulateStaticSiteModel(majority, 9, 1.0L, 4.0L,
                                                100000.0L, &rng);
  EXPECT_EQ(sim.availability, sim.read_availability);
}

TEST(BestStaticGrid, PrefersFactorizationsOverSquares) {
  // Table 1's "best dimensions" are not always the squarest shape; the
  // search must consider every exact factorization.
  BestGridResult best12 = BestStaticGrid(12, 0.95L);
  EXPECT_EQ(best12.dims.rows, 3u);
  EXPECT_EQ(best12.dims.cols, 4u);
  BestGridResult best30 = BestStaticGrid(30, 0.95L);
  EXPECT_EQ(best30.dims.rows, 5u);
  EXPECT_EQ(best30.dims.cols, 6u);
}

TEST(EnumeratedAvailability, ReadAtLeastWrite) {
  coterie::GridCoterie grid;
  for (uint32_t n : {4u, 9u, 12u}) {
    Real read = EnumeratedAvailability(grid, n, 0.9L, true);
    Real write = EnumeratedAvailability(grid, n, 0.9L, false);
    EXPECT_GE(read, write) << "N=" << n;
  }
}

TEST(EnumeratedAvailability, DegenerateProbabilities) {
  coterie::GridCoterie grid;
  // p -> 1: everything available; p -> 0: nothing is.
  EXPECT_NEAR(static_cast<double>(
                  EnumeratedAvailability(grid, 9, 0.999999L, false)),
              1.0, 1e-4);
  EXPECT_NEAR(static_cast<double>(
                  EnumeratedAvailability(grid, 9, 0.000001L, false)),
              0.0, 1e-4);
}

}  // namespace
}  // namespace dcp::analysis
