#include "shard/placement.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace dcp::shard {
namespace {

PlacementOptions DefaultOptions() {
  PlacementOptions p;
  p.num_nodes = 7;
  p.num_objects = 64;
  p.replication_factor = 3;
  p.seed = 42;
  return p;
}

TEST(ObjectTable, PlacesEveryObjectOnReplicationFactorNodes) {
  ObjectTable table(DefaultOptions());
  for (storage::ObjectId o = 0; o < table.num_objects(); ++o) {
    const ObjectPlacement& p = table.placement(o);
    EXPECT_EQ(p.replicas.Size(), 3u) << "object " << o;
    EXPECT_EQ(p.ranking.size(), 3u) << "object " << o;
    // The ranking and the set agree.
    for (NodeId n : p.ranking) {
      EXPECT_TRUE(p.replicas.Contains(n));
    }
    EXPECT_TRUE(p.replicas.IsSubsetOf(table.pool()));
    EXPECT_EQ(p.coterie_class, 0u);
  }
}

TEST(ObjectTable, ReplicationFactorClampedToPool) {
  PlacementOptions p = DefaultOptions();
  p.num_nodes = 3;
  p.replication_factor = 5;
  ObjectTable table(p);
  for (storage::ObjectId o = 0; o < table.num_objects(); ++o) {
    EXPECT_EQ(table.placement(o).replicas.Size(), 3u);
  }
}

TEST(ObjectTable, SameSeedSameTable) {
  ObjectTable a(DefaultOptions());
  ObjectTable b(DefaultOptions());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  for (storage::ObjectId o = 0; o < a.num_objects(); ++o) {
    EXPECT_EQ(a.placement(o).replicas, b.placement(o).replicas);
    EXPECT_EQ(a.placement(o).ranking, b.placement(o).ranking);
    EXPECT_EQ(a.placement(o).coterie_class, b.placement(o).coterie_class);
  }
}

TEST(ObjectTable, DifferentSeedDifferentTable) {
  PlacementOptions p = DefaultOptions();
  ObjectTable a(p);
  p.seed = 43;
  ObjectTable b(p);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(ObjectTable, LoadIsRoughlyBalanced) {
  PlacementOptions p = DefaultOptions();
  p.num_objects = 512;
  ObjectTable table(p);
  std::map<NodeId, uint32_t> load = table.ReplicaLoad();
  ASSERT_EQ(load.size(), 7u);
  // 512 objects x 3 replicas over 7 nodes ~ 219 each; rendezvous hashing
  // should stay within a loose factor-of-two band.
  uint32_t expected = 512 * 3 / 7;
  for (const auto& [node, n] : load) {
    EXPECT_GT(n, expected / 2) << "node " << node;
    EXPECT_LT(n, expected * 2) << "node " << node;
  }
}

TEST(ObjectTable, CoterieClassesCoverAllClasses) {
  PlacementOptions p = DefaultOptions();
  p.num_objects = 128;
  p.num_coterie_classes = 3;
  ObjectTable table(p);
  std::set<uint32_t> seen;
  for (storage::ObjectId o = 0; o < table.num_objects(); ++o) {
    uint32_t c = table.placement(o).coterie_class;
    EXPECT_LT(c, 3u);
    seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ObjectTable, RebalanceMovesOnlyAffectedObjects) {
  PlacementOptions p = DefaultOptions();
  p.num_objects = 256;
  ObjectTable table(p);
  std::vector<NodeSet> before;
  for (storage::ObjectId o = 0; o < table.num_objects(); ++o) {
    before.push_back(table.placement(o).replicas);
  }

  // Remove node 3: only objects that hosted a replica on 3 may move, and
  // every one of them must (it lost a member).
  NodeSet smaller = table.pool();
  smaller.Erase(3);
  RebalanceRecord rec = table.Rebalance(smaller);
  EXPECT_EQ(rec.from_epoch, 0u);
  EXPECT_EQ(rec.to_epoch, 1u);
  EXPECT_EQ(table.epoch(), 1u);

  uint32_t affected = 0;
  for (storage::ObjectId o = 0; o < table.num_objects(); ++o) {
    const NodeSet& now = table.placement(o).replicas;
    EXPECT_FALSE(now.Contains(3));
    if (before[o].Contains(3)) {
      ++affected;
      EXPECT_FALSE(now == before[o]);
      // Minimal movement: the survivors stay.
      NodeSet survivors = before[o];
      survivors.Erase(3);
      EXPECT_TRUE(survivors.IsSubsetOf(now)) << "object " << o;
    } else {
      EXPECT_EQ(now, before[o]) << "object " << o << " moved needlessly";
    }
  }
  EXPECT_EQ(rec.objects_moved, affected);
  EXPECT_GT(affected, 0u);

  // Restoring the pool restores the original table exactly (same salt).
  RebalanceRecord rec2 = table.Rebalance(NodeSet::Universe(7));
  EXPECT_EQ(rec2.to_epoch, 2u);
  for (storage::ObjectId o = 0; o < table.num_objects(); ++o) {
    EXPECT_EQ(table.placement(o).replicas, before[o]);
  }
  ASSERT_EQ(table.audit_log().size(), 2u);
  EXPECT_EQ(table.audit_log()[0].objects_moved, affected);
}

TEST(ObjectTable, FingerprintTracksEpoch) {
  ObjectTable table(DefaultOptions());
  uint64_t fp0 = table.Fingerprint();
  NodeSet smaller = table.pool();
  smaller.Erase(0);
  RebalanceRecord rec = table.Rebalance(smaller);
  EXPECT_NE(table.Fingerprint(), fp0);
  EXPECT_EQ(rec.fingerprint_after, table.Fingerprint());
}

}  // namespace
}  // namespace dcp::shard
