#include <gtest/gtest.h>

#include "harness/fault_injector.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::harness {
namespace {

using protocol::Cluster;
using protocol::ClusterOptions;
using protocol::CoterieKind;

ClusterOptions Options() {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = 5;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  return opts;
}

TEST(FaultInjector, InjectsFailuresAndRepairsAtConfiguredRates) {
  Cluster cluster(Options());
  FaultInjector::Options fopts;
  fopts.mtbf = 1000;
  fopts.mttr = 250;
  fopts.seed = 3;
  FaultInjector injector(&cluster, fopts);
  cluster.RunFor(50000);
  // Expect roughly 9 * horizon / (mtbf + mttr) cycles = ~360 failures.
  EXPECT_GT(injector.failures_injected(), 200u);
  EXPECT_LT(injector.failures_injected(), 600u);
  // Repairs track failures within one in-flight cycle per node.
  EXPECT_NEAR(double(injector.repairs_injected()),
              double(injector.failures_injected()), 9.0);
  EXPECT_NEAR(injector.NodeAvailability(), 0.8, 1e-9);
}

TEST(FaultInjector, StopQuiescesInjection) {
  Cluster cluster(Options());
  FaultInjector::Options fopts;
  fopts.mtbf = 500;
  fopts.mttr = 100;
  FaultInjector injector(&cluster, fopts);
  cluster.RunFor(5000);
  injector.Stop();
  uint64_t frozen = injector.failures_injected();
  cluster.RunFor(20000);
  EXPECT_EQ(injector.failures_injected(), frozen);
  // All nodes eventually... stay in whatever state they were; recover
  // them manually so the cluster is reusable.
  for (NodeId id = 0; id < 9; ++id) {
    if (!cluster.network().IsUp(id)) cluster.Recover(id);
  }
}

// Regression: the injector schedules its first fault events at
// construction; Stop() before any of them fire must turn the whole queued
// schedule into no-ops (the shared stop flag is checked inside each event;
// safe because the simulator is single-threaded).
TEST(FaultInjector, StopBeforePendingEventsFireMakesThemNoOps) {
  Cluster cluster(Options());
  FaultInjector::Options fopts;
  fopts.mtbf = 100;  // Aggressive: events queued almost immediately.
  fopts.mttr = 10;
  FaultInjector injector(&cluster, fopts);
  injector.Stop();  // Nothing has run yet — the queue is full of events.
  cluster.RunFor(50000);
  EXPECT_EQ(injector.failures_injected(), 0u);
  EXPECT_EQ(injector.repairs_injected(), 0u);
  EXPECT_EQ(cluster.UpNodes().Size(), 9u);
}

TEST(FaultInjector, SafeToDestroyWithEventsQueued) {
  Cluster cluster(Options());
  {
    FaultInjector injector(&cluster, {});
    cluster.RunFor(100);
  }  // Destroyed with fault events still queued.
  cluster.RunFor(100000);  // Must not crash or mutate further.
  SUCCEED();
}

TEST(WorkloadDriver, DrivesOperationsAndRecordsStats) {
  Cluster cluster(Options());
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.05;
  wopts.write_fraction = 0.6;
  WorkloadDriver workload(&cluster, wopts);
  cluster.RunFor(20000);
  workload.Stop();
  // ~1000 operations, ~60% writes. Open-loop clients do not retry, so
  // concurrent arrivals can fail on lock conflicts even failure-free —
  // but the vast majority must succeed, and the history must serialize.
  EXPECT_GT(workload.writes().attempted, 400u);
  EXPECT_GT(workload.reads().attempted, 250u);
  EXPECT_GT(workload.writes().success_rate(), 0.75);
  EXPECT_GT(workload.reads().success_rate(), 0.85);
  EXPECT_GT(workload.writes().mean_latency(), 0.0);
  EXPECT_GT(workload.writes().mean_latency(),
            workload.reads().mean_latency());  // Writes pay 2PC rounds.
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(WorkloadDriver, SurvivesChurnWithDaemons) {
  Cluster cluster(Options());
  FaultInjector::Options fopts;
  fopts.mtbf = 5000;
  fopts.mttr = 800;
  FaultInjector faults(&cluster, fopts);
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  WorkloadDriver workload(&cluster, wopts);
  cluster.RunFor(100000);
  workload.Stop();
  faults.Stop();
  // Churn costs some operations but most must succeed (no retries!).
  EXPECT_GT(workload.writes().success_rate(), 0.7);
  EXPECT_GT(workload.reads().success_rate(), 0.7);
  EXPECT_GT(faults.failures_injected(), 50u);
  EXPECT_TRUE(cluster.CheckHistory().ok())
      << cluster.CheckHistory().ToString();
}

// Regression: same contract for the workload driver — its first arrival
// event is queued at construction, and Stop() before it fires must keep
// every statistic at zero.
TEST(WorkloadDriver, StopBeforePendingEventsFireMakesThemNoOps) {
  Cluster cluster(Options());
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 1.0;  // An arrival is due almost immediately.
  WorkloadDriver workload(&cluster, wopts);
  workload.Stop();  // The first arrival event is still queued.
  cluster.RunFor(20000);
  EXPECT_EQ(workload.writes().attempted, 0u);
  EXPECT_EQ(workload.reads().attempted, 0u);
  EXPECT_EQ(cluster.history().writes().size(), 0u);
}

TEST(WorkloadDriver, StaticStackWorks) {
  Cluster cluster(Options());
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.02;
  wopts.stack = Stack::kStatic;
  WorkloadDriver workload(&cluster, wopts);
  cluster.RunFor(10000);
  workload.Stop();
  EXPECT_GT(workload.writes().attempted, 50u);
  // Failure-free, but open-loop arrivals may still collide on locks.
  EXPECT_GT(workload.writes().success_rate(), 0.8);
}

}  // namespace
}  // namespace dcp::harness
