#include "protocol/history.h"

#include <gtest/gtest.h>

namespace dcp::protocol {
namespace {

using storage::Update;
using storage::Version;

HistoryRecorder::CommittedWrite W(Version v, Update u, rt::Time t) {
  HistoryRecorder::CommittedWrite w;
  w.version = v;
  w.update = std::move(u);
  w.decided_at = t;
  w.coordinator = 0;
  return w;
}

HistoryRecorder::CompletedRead R(Version v, std::vector<uint8_t> data,
                                 rt::Time start, rt::Time end) {
  HistoryRecorder::CompletedRead r;
  r.version = v;
  r.data = std::move(data);
  r.started_at = start;
  r.finished_at = end;
  r.coordinator = 1;
  return r;
}

TEST(History, EmptyHistoryIsSerializable) {
  HistoryRecorder h;
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ValidSequenceAccepted) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(1, {'b'}), 20));
  h.RecordRead(R(2, {'a', 'b'}, 25, 26));
  h.RecordRead(R(1, {'a'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, DuplicateVersionRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(1, Update::Partial(0, {'b'}), 20));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, VersionGapRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(3, Update::Partial(0, {'b'}), 20));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, RealTimeOrderViolationRejected) {
  HistoryRecorder h;
  // v2 decided before v1: impossible under quorum locking.
  h.RecordWriteDecision(W(2, Update::Partial(0, {'b'}), 5));
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ReadWrongDataRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordRead(R(1, {'z'}, 12, 13));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, StaleReadRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(0, {'b'}), 20));
  // Read started at 30 (after v2's decision) but returned v1.
  h.RecordRead(R(1, {'a'}, 30, 31));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ConcurrentReadMayReturnEitherVersion) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(0, {'b'}), 20));
  // Read started at 15, i.e. before v2 was decided: v1 is legal.
  h.RecordRead(R(1, {'a'}, 15, 25));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ReadOfUnknownVersionRejected) {
  HistoryRecorder h;
  h.RecordRead(R(4, {'x'}, 1, 2));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ReplayRespectsInitialValue) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(1, {'X'}), 10));
  h.RecordRead(R(1, {'a', 'X', 'c'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({'a', 'b', 'c'}).ok());
  // Same read fails under a different initial value.
  HistoryRecorder h2;
  h2.RecordWriteDecision(W(1, Update::Partial(1, {'X'}), 10));
  h2.RecordRead(R(1, {'a', 'X', 'c'}, 12, 13));
  EXPECT_FALSE(h2.CheckOneCopySerializable({'q', 'q', 'q'}).ok());
}

TEST(History, TotalUpdatesReplayCorrectly) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Total({'n', 'e', 'w'}), 10));
  h.RecordRead(R(1, {'n', 'e', 'w'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({'o', 'l', 'd', '!'}).ok());
}

// --- partial-write overlap edge cases -------------------------------------

TEST(History, AdjacentPartialRangesComposeWithoutOverlap) {
  // [0,2) then [2,4): adjacent but disjoint; both survive in the replay.
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a', 'b'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(2, {'c', 'd'}), 20));
  h.RecordRead(R(2, {'a', 'b', 'c', 'd'}, 25, 26));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, OverlappingPartialsLastWriterWinsOnTheOverlap) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'x', 'x', 'x'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(1, {'y'}), 20));
  h.RecordRead(R(2, {'x', 'y', 'x'}, 25, 26));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());

  // Same history, but the read pretends the overlap kept v1's byte.
  HistoryRecorder bad;
  bad.RecordWriteDecision(W(1, Update::Partial(0, {'x', 'x', 'x'}), 10));
  bad.RecordWriteDecision(W(2, Update::Partial(1, {'y'}), 20));
  bad.RecordRead(R(2, {'x', 'x', 'x'}, 25, 26));
  EXPECT_FALSE(bad.CheckOneCopySerializable({}).ok());
}

TEST(History, ZeroLengthPartialIsAPureVersionBump) {
  // A zero-length update at offset 0 changes no bytes but still consumes
  // a version slot; reads of that version must see the prior contents.
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(0, {}), 20));
  h.RecordRead(R(2, {'a'}, 25, 26));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ZeroLengthPartialPastTheEndZeroFills) {
  // Replay semantics follow VersionedObject::Apply: offset+len beyond the
  // current size resizes with zero fill, even when len == 0.
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(3, {}), 20));
  h.RecordRead(R(2, {'a', 0, 0}, 25, 26));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, PartialBeyondEndZeroFillsTheGap) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(4, {'z'}), 10));
  h.RecordRead(R(1, {'a', 'b', 0, 0, 'z'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({'a', 'b'}).ok());
}

TEST(History, SnapshotWritesInterleavedWithPartialsReplayInOrder) {
  // partial, then a full-object snapshot install, then another partial:
  // the snapshot wipes the first partial, the second lands on top of the
  // snapshot, and reads of every intermediate version check out.
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'p'}), 10));
  h.RecordWriteDecision(W(2, Update::Total({'s', 'n', 'a', 'p'}), 20));
  h.RecordWriteDecision(W(3, Update::Partial(1, {'X'}), 30));
  h.RecordRead(R(1, {'p'}, 12, 13));
  h.RecordRead(R(2, {'s', 'n', 'a', 'p'}, 22, 23));
  h.RecordRead(R(3, {'s', 'X', 'a', 'p'}, 32, 33));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());

  // A read of the post-snapshot version that still shows the
  // pre-snapshot partial is a replay violation.
  HistoryRecorder bad;
  bad.RecordWriteDecision(W(1, Update::Partial(0, {'p'}), 10));
  bad.RecordWriteDecision(W(2, Update::Total({'s', 'n', 'a', 'p'}), 20));
  bad.RecordRead(R(2, {'p', 'n', 'a', 'p'}, 22, 23));
  EXPECT_FALSE(bad.CheckOneCopySerializable({}).ok());
}

}  // namespace
}  // namespace dcp::protocol
