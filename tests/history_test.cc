#include "protocol/history.h"

#include <gtest/gtest.h>

namespace dcp::protocol {
namespace {

using storage::Update;
using storage::Version;

HistoryRecorder::CommittedWrite W(Version v, Update u, sim::Time t) {
  HistoryRecorder::CommittedWrite w;
  w.version = v;
  w.update = std::move(u);
  w.decided_at = t;
  w.coordinator = 0;
  return w;
}

HistoryRecorder::CompletedRead R(Version v, std::vector<uint8_t> data,
                                 sim::Time start, sim::Time end) {
  HistoryRecorder::CompletedRead r;
  r.version = v;
  r.data = std::move(data);
  r.started_at = start;
  r.finished_at = end;
  r.coordinator = 1;
  return r;
}

TEST(History, EmptyHistoryIsSerializable) {
  HistoryRecorder h;
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ValidSequenceAccepted) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(1, {'b'}), 20));
  h.RecordRead(R(2, {'a', 'b'}, 25, 26));
  h.RecordRead(R(1, {'a'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, DuplicateVersionRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(1, Update::Partial(0, {'b'}), 20));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, VersionGapRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(3, Update::Partial(0, {'b'}), 20));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, RealTimeOrderViolationRejected) {
  HistoryRecorder h;
  // v2 decided before v1: impossible under quorum locking.
  h.RecordWriteDecision(W(2, Update::Partial(0, {'b'}), 5));
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ReadWrongDataRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordRead(R(1, {'z'}, 12, 13));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, StaleReadRejected) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(0, {'b'}), 20));
  // Read started at 30 (after v2's decision) but returned v1.
  h.RecordRead(R(1, {'a'}, 30, 31));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ConcurrentReadMayReturnEitherVersion) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(0, {'a'}), 10));
  h.RecordWriteDecision(W(2, Update::Partial(0, {'b'}), 20));
  // Read started at 15, i.e. before v2 was decided: v1 is legal.
  h.RecordRead(R(1, {'a'}, 15, 25));
  EXPECT_TRUE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ReadOfUnknownVersionRejected) {
  HistoryRecorder h;
  h.RecordRead(R(4, {'x'}, 1, 2));
  EXPECT_FALSE(h.CheckOneCopySerializable({}).ok());
}

TEST(History, ReplayRespectsInitialValue) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Partial(1, {'X'}), 10));
  h.RecordRead(R(1, {'a', 'X', 'c'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({'a', 'b', 'c'}).ok());
  // Same read fails under a different initial value.
  HistoryRecorder h2;
  h2.RecordWriteDecision(W(1, Update::Partial(1, {'X'}), 10));
  h2.RecordRead(R(1, {'a', 'X', 'c'}, 12, 13));
  EXPECT_FALSE(h2.CheckOneCopySerializable({'q', 'q', 'q'}).ok());
}

TEST(History, TotalUpdatesReplayCorrectly) {
  HistoryRecorder h;
  h.RecordWriteDecision(W(1, Update::Total({'n', 'e', 'w'}), 10));
  h.RecordRead(R(1, {'n', 'e', 'w'}, 12, 13));
  EXPECT_TRUE(h.CheckOneCopySerializable({'o', 'l', 'd', '!'}).ok());
}

}  // namespace
}  // namespace dcp::protocol
