// The adversarial correctness harness: seeded nemesis scenarios (crash
// storms, partitions, asymmetric cuts, flapping/slow links, message-chaos
// windows, background churn) on top of a standing >=5% drop + duplication +
// reordering fault model, against an open-loop workload. After the nemesis
// stops and heals, the cluster must reach quiescence and all four invariant
// checkers must pass — for every seed and every coterie kind.

#include "harness/nemesis.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "analysis/client_history.h"
#include "analysis/linearize.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::harness {
namespace {

using protocol::Cluster;
using protocol::ClusterOptions;
using protocol::CoterieKind;

constexpr sim::Time kHorizon = 12000;

ClusterOptions BaseOptions(CoterieKind kind, uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = kind;
  opts.seed = seed;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  // The standing message-level fault model the whole run lives under:
  // >=5% drop plus duplication and reordering on every link.
  opts.fault_model.global.drop = 0.05;
  opts.fault_model.global.duplicate = 0.05;
  opts.fault_model.global.reorder = 0.10;
  opts.fault_model.global.reorder_spike = 20.0;
  return opts;
}

/// Runs the simulation in slices until the cluster is quiescent (no
/// prepared-but-undecided 2PC action anywhere), up to `budget` time.
bool RunToQuiescence(Cluster& cluster, sim::Time budget) {
  const sim::Time slice = 500;
  for (sim::Time spent = 0; spent < budget; spent += slice) {
    cluster.RunFor(slice);
    if (cluster.Quiescent()) return true;
  }
  return cluster.Quiescent();
}

class NemesisSweep
    : public ::testing::TestWithParam<std::tuple<CoterieKind, int>> {};

TEST_P(NemesisSweep, InvariantsHoldAndClusterQuiesces) {
  auto [kind, seed] = GetParam();
  Cluster cluster(BaseOptions(kind, uint64_t(seed)));

  Scenario scenario = RandomScenario(uint64_t(seed) * 7919 + 13,
                                     cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = uint64_t(seed) + 1000;
  wopts.client_history = &history;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();

  ASSERT_TRUE(RunToQuiescence(cluster, 20000))
      << "cluster failed to quiesce after faults were lifted (seed " << seed
      << ")";

  EXPECT_TRUE(cluster.CheckEpochInvariants().ok())
      << cluster.CheckEpochInvariants().ToString();
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok())
      << cluster.CheckReplicaConsistency().ToString();
  EXPECT_TRUE(cluster.CheckHistory().ok())
      << cluster.CheckHistory().ToString();
  EXPECT_TRUE(cluster.Quiescent());

  // End-to-end client-consistency verdict: the history the clients
  // actually observed (including open-interval timeouts) must be
  // linearizable against the versioned-object model.
  analysis::AuditOptions aopts;
  aopts.mode = analysis::AuditMode::kLinearizable;
  aopts.initial_value = std::vector<uint8_t>(32, 0);
  analysis::AuditVerdict verdict = analysis::AuditHistory(history, aopts);
  EXPECT_TRUE(verdict.ok) << verdict.ToString();
  EXPECT_FALSE(verdict.inconclusive) << verdict.ToString();

  // The run must actually have been adversarial: the nemesis applied
  // faults and the fault model interfered with real traffic.
  EXPECT_GT(nemesis.faults_applied(), 0u);
  EXPECT_GT(cluster.network().stats().total_dropped, 0u);
  EXPECT_GT(cluster.network().stats().total_duplicated, 0u);
  EXPECT_GT(cluster.network().stats().total_reordered, 0u);
  EXPECT_GT(workload.writes().attempted + workload.reads().attempted, 20u);
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<CoterieKind, int>>& info) {
  auto [kind, seed] = info.param;
  std::string k = kind == CoterieKind::kGrid       ? "Grid"
                  : kind == CoterieKind::kMajority ? "Majority"
                                                   : "Tree";
  return k + "Seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, NemesisSweep,
    ::testing::Combine(::testing::Values(CoterieKind::kGrid,
                                         CoterieKind::kMajority,
                                         CoterieKind::kTree),
                       ::testing::Range(1, 21)),
    SweepName);

// After a heal with *no* further faults, the workload must make progress
// again (the chaos must not wedge the protocol machinery permanently).
TEST(Nemesis, ClusterServesWritesAfterStopAndHeal) {
  Cluster cluster(BaseOptions(CoterieKind::kGrid, 77));
  Scenario scenario = RandomScenario(77, cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);
  cluster.RunFor(kHorizon);
  nemesis.StopAndHeal();
  ASSERT_TRUE(RunToQuiescence(cluster, 20000));
  cluster.ClearNetworkFaults();  // Idempotent with StopAndHeal.

  auto w = cluster.WriteSyncRetry(0, protocol::Update::Partial(1, {'z'}), 20);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  auto r = cluster.ReadSyncRetry(4, 20);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// The declarative scenario description round-trips into a readable log.
TEST(Nemesis, LogRecordsAppliedAndLiftedFaults) {
  Cluster cluster(BaseOptions(CoterieKind::kGrid, 5));
  Scenario scenario;
  scenario.name = "hand-written";
  NemesisEvent cut;
  cut.kind = NemesisEvent::Kind::kAsymmetricCut;
  cut.at = 100;
  cut.duration = 200;
  cut.src = 0;
  cut.dst = 1;
  scenario.events.push_back(cut);
  Nemesis nemesis(&cluster, scenario);

  cluster.RunFor(150);
  EXPECT_FALSE(cluster.network().Reachable(0, 1));
  EXPECT_TRUE(cluster.network().Reachable(1, 0));
  cluster.RunFor(200);
  EXPECT_TRUE(cluster.network().Reachable(0, 1));
  ASSERT_EQ(nemesis.log().size(), 2u);
  EXPECT_EQ(nemesis.log()[0].description, "apply asymmetric-cut 0->1");
  EXPECT_EQ(nemesis.log()[1].description, "lift asymmetric-cut 0->1");
}

// Stop() before any scheduled event fires turns the whole schedule into
// no-ops (the stop flag outlives queued closures).
TEST(Nemesis, StopBeforeEventsFireIsNoOp) {
  Cluster cluster(BaseOptions(CoterieKind::kGrid, 6));
  Scenario scenario = RandomScenario(6, cluster.num_nodes(), kHorizon);
  scenario.churn = false;
  Nemesis nemesis(&cluster, scenario);
  nemesis.Stop();
  cluster.RunFor(kHorizon);
  EXPECT_EQ(nemesis.faults_applied(), 0u);
  EXPECT_EQ(cluster.UpNodes().Size(), cluster.num_nodes());
}

}  // namespace
}  // namespace dcp::harness
