#include "util/logging.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

TEST(Logging, DefaultLevelIsWarn) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST(Logging, LevelGatesEmission) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(internal_logging::Enabled(LogLevel::kWarn));
  EXPECT_TRUE(internal_logging::Enabled(LogLevel::kError));
  SetLogLevel(LogLevel::kTrace);
  EXPECT_TRUE(internal_logging::Enabled(LogLevel::kTrace));
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(internal_logging::Enabled(LogLevel::kError));
  SetLogLevel(saved);
}

TEST(Logging, MacroCompilesAndStreams) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  // Gated off: the expression must still compile with mixed types.
  DCP_LOG(kInfo) << "value " << 42 << " pi " << 3.14;
  SetLogLevel(saved);
}

TEST(Logging, DisabledLevelSkipsStreamEvaluation) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "expensive";
  };
  DCP_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);  // Short-circuited by the if-guard.
  SetLogLevel(saved);
}

}  // namespace
}  // namespace dcp
