#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dcp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(9);
  double rate = 2.5;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(11);
  Rng fork1 = a.Fork();
  Rng b(11);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork1.Next64(), fork2.Next64());
}

}  // namespace
}  // namespace dcp
