// Whole-stack determinism: two runs from the same seed must produce
// byte-identical results — histories, replica fingerprints, traffic
// counts. This is what makes every other seeded test in the suite (and
// every bench) reproducible; a stray std::rand(), iteration over an
// unordered container, or wall-clock read would break it here first.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/fault_injector.h"
#include "harness/nemesis.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

struct RunFingerprint {
  size_t writes;
  size_t reads;
  std::vector<storage::Version> write_versions;
  std::vector<double> write_times;
  std::vector<uint64_t> replica_fingerprints;
  uint64_t messages_sent;
  uint64_t events_executed;
};

RunFingerprint RunOnce(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = seed;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  Cluster cluster(opts);

  harness::FaultInjector::Options fopts;
  fopts.mtbf = 6000;
  fopts.mttr = 900;
  fopts.seed = seed + 1;
  harness::FaultInjector faults(&cluster, fopts);

  harness::WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = seed + 2;
  harness::WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(60000);
  workload.Stop();
  faults.Stop();

  RunFingerprint fp;
  fp.writes = cluster.history().writes().size();
  fp.reads = cluster.history().reads().size();
  for (const auto& w : cluster.history().writes()) {
    fp.write_versions.push_back(w.version);
    fp.write_times.push_back(w.decided_at);
  }
  for (uint32_t i = 0; i < 9; ++i) {
    fp.replica_fingerprints.push_back(
        cluster.node(i).store().object().Fingerprint());
  }
  fp.messages_sent = cluster.network().stats().total_sent;
  fp.events_executed = cluster.simulator().events_executed();
  return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  RunFingerprint a = RunOnce(4242);
  RunFingerprint b = RunOnce(4242);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.write_versions, b.write_versions);
  EXPECT_EQ(a.write_times, b.write_times);
  EXPECT_EQ(a.replica_fingerprints, b.replica_fingerprints);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunFingerprint a = RunOnce(1);
  RunFingerprint b = RunOnce(2);
  // Different fault/workload schedules must lead to different traffic.
  EXPECT_NE(a.messages_sent, b.messages_sent);
}

// --- nemesis determinism ---------------------------------------------------
// The adversarial harness must replay exactly from one seed: identical
// NetworkStats (including dropped/duplicated/reordered counters), an
// identical applied-fault schedule, and identical committed histories.

struct NemesisFingerprint {
  net::NetworkStats network_stats;
  std::vector<double> fault_times;
  std::vector<std::string> fault_descriptions;
  std::vector<storage::Version> write_versions;
  std::vector<double> write_times;
  uint64_t events_executed;
  uint64_t churn_failures;
};

NemesisFingerprint RunNemesisOnce(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = seed;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  opts.fault_model.global.drop = 0.05;
  opts.fault_model.global.duplicate = 0.05;
  opts.fault_model.global.reorder = 0.10;
  Cluster cluster(opts);

  harness::Scenario scenario = harness::RandomScenario(seed + 17, 9, 10000);
  harness::Nemesis nemesis(&cluster, scenario);

  harness::WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = seed + 2;
  harness::WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(10000);
  workload.Stop();
  nemesis.StopAndHeal();
  cluster.RunFor(5000);

  NemesisFingerprint fp;
  fp.network_stats = cluster.network().stats();
  for (const auto& applied : nemesis.log()) {
    fp.fault_times.push_back(applied.at);
    fp.fault_descriptions.push_back(applied.description);
  }
  for (const auto& w : cluster.history().writes()) {
    fp.write_versions.push_back(w.version);
    fp.write_times.push_back(w.decided_at);
  }
  fp.events_executed = cluster.simulator().events_executed();
  fp.churn_failures =
      nemesis.churn() ? nemesis.churn()->failures_injected() : 0;
  return fp;
}

TEST(Determinism, NemesisIdenticalSeedsIdenticalRuns) {
  NemesisFingerprint a = RunNemesisOnce(1717);
  NemesisFingerprint b = RunNemesisOnce(1717);
  EXPECT_EQ(a.network_stats, b.network_stats);
  EXPECT_EQ(a.fault_times, b.fault_times);
  EXPECT_EQ(a.fault_descriptions, b.fault_descriptions);
  EXPECT_EQ(a.write_versions, b.write_versions);
  EXPECT_EQ(a.write_times, b.write_times);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.churn_failures, b.churn_failures);
  // The run must actually have exercised the fault machinery.
  EXPECT_GT(a.network_stats.total_dropped, 0u);
  EXPECT_FALSE(a.fault_descriptions.empty());
}

/// Serializes a fingerprint to bytes, with doubles in hexfloat so two
/// values compare equal iff they are bit-identical — a byte-level
/// contract rather than EXPECT_EQ's member-wise one.
std::string FingerprintBytes(const NemesisFingerprint& fp) {
  std::ostringstream os;
  os << std::hexfloat;
  const net::NetworkStats& ns = fp.network_stats;
  os << ns.total_sent << '|' << ns.total_delivered << '|' << ns.total_failed
     << '|' << ns.total_dropped << '|' << ns.total_duplicated << '|'
     << ns.total_reordered << '\n';
  for (const auto& [type, ts] : ns.by_type) {
    os << type << ':' << ts.sent << ',' << ts.delivered << ',' << ts.failed
       << ',' << ts.dropped << ',' << ts.duplicated << '\n';
  }
  for (const auto& [node, n] : ns.delivered_to) os << node << '=' << n << '\n';
  for (double t : fp.fault_times) os << t << '\n';
  for (const std::string& d : fp.fault_descriptions) os << d << '\n';
  for (storage::Version v : fp.write_versions) os << v << '\n';
  for (double t : fp.write_times) os << t << '\n';
  os << fp.events_executed << '|' << fp.churn_failures << '\n';
  return std::move(os).str();
}

TEST(Determinism, NemesisFingerprintBytesAreIdentical) {
  std::string a = FingerprintBytes(RunNemesisOnce(909));
  std::string b = FingerprintBytes(RunNemesisOnce(909));
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(a == b) << "same-seed fingerprints differ:\n"
                      << a << "---- vs ----\n"
                      << b;
}

TEST(Determinism, NemesisDifferentSeedsDiverge) {
  NemesisFingerprint a = RunNemesisOnce(21);
  NemesisFingerprint b = RunNemesisOnce(22);
  EXPECT_NE(a.network_stats.total_sent, b.network_stats.total_sent);
  EXPECT_NE(a.fault_descriptions, b.fault_descriptions);
}

TEST(Determinism, ScenarioGenerationIsPureFunctionOfSeed) {
  harness::Scenario a = harness::RandomScenario(9, 9, 20000);
  harness::Scenario b = harness::RandomScenario(9, 9, 20000);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].Describe(), b.events[i].Describe());
    EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at);
    EXPECT_DOUBLE_EQ(a.events[i].duration, b.events[i].duration);
  }
  EXPECT_EQ(a.churn_seed, b.churn_seed);
}

}  // namespace
}  // namespace dcp::protocol
