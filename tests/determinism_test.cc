// Whole-stack determinism: two runs from the same seed must produce
// byte-identical results — histories, replica fingerprints, traffic
// counts. This is what makes every other seeded test in the suite (and
// every bench) reproducible; a stray std::rand(), iteration over an
// unordered container, or wall-clock read would break it here first.

#include <gtest/gtest.h>

#include <vector>

#include "harness/fault_injector.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

struct RunFingerprint {
  size_t writes;
  size_t reads;
  std::vector<storage::Version> write_versions;
  std::vector<double> write_times;
  std::vector<uint64_t> replica_fingerprints;
  uint64_t messages_sent;
  uint64_t events_executed;
};

RunFingerprint RunOnce(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = seed;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  Cluster cluster(opts);

  harness::FaultInjector::Options fopts;
  fopts.mtbf = 6000;
  fopts.mttr = 900;
  fopts.seed = seed + 1;
  harness::FaultInjector faults(&cluster, fopts);

  harness::WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = seed + 2;
  harness::WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(60000);
  workload.Stop();
  faults.Stop();

  RunFingerprint fp;
  fp.writes = cluster.history().writes().size();
  fp.reads = cluster.history().reads().size();
  for (const auto& w : cluster.history().writes()) {
    fp.write_versions.push_back(w.version);
    fp.write_times.push_back(w.decided_at);
  }
  for (uint32_t i = 0; i < 9; ++i) {
    fp.replica_fingerprints.push_back(
        cluster.node(i).store().object().Fingerprint());
  }
  fp.messages_sent = cluster.network().stats().total_sent;
  fp.events_executed = cluster.simulator().events_executed();
  return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  RunFingerprint a = RunOnce(4242);
  RunFingerprint b = RunOnce(4242);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.write_versions, b.write_versions);
  EXPECT_EQ(a.write_times, b.write_times);
  EXPECT_EQ(a.replica_fingerprints, b.replica_fingerprints);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunFingerprint a = RunOnce(1);
  RunFingerprint b = RunOnce(2);
  // Different fault/workload schedules must lead to different traffic.
  EXPECT_NE(a.messages_sent, b.messages_sent);
}

}  // namespace
}  // namespace dcp::protocol
