#include "analysis/linearize.h"

#include <gtest/gtest.h>

#include "analysis/client_history.h"

namespace dcp::analysis {
namespace {

using storage::Update;
using storage::Version;

/// Fixture builders. Ops are on object 0 unless stated; ids are assigned
/// by ClientHistory::Add in insertion order.
ClientOp AckedWrite(uint64_t client, double inv, double ret, Version v,
                    Update u, storage::ObjectId object = 0) {
  ClientOp op;
  op.client = client;
  op.object = object;
  op.kind = ClientOp::Kind::kWrite;
  op.outcome = ClientOp::Outcome::kOk;
  op.invoked_at = inv;
  op.returned_at = ret;
  op.version = v;
  op.update = std::move(u);
  return op;
}

ClientOp OpenWrite(uint64_t client, double inv, Update u,
                   storage::ObjectId object = 0) {
  ClientOp op;
  op.client = client;
  op.object = object;
  op.kind = ClientOp::Kind::kWrite;
  op.outcome = ClientOp::Outcome::kOpen;
  op.invoked_at = inv;
  op.update = std::move(u);
  return op;
}

ClientOp FailedWrite(uint64_t client, double inv, double ret, Update u,
                     storage::ObjectId object = 0) {
  ClientOp op;
  op.client = client;
  op.object = object;
  op.kind = ClientOp::Kind::kWrite;
  op.outcome = ClientOp::Outcome::kFailed;
  op.invoked_at = inv;
  op.returned_at = ret;
  op.update = std::move(u);
  return op;
}

ClientOp OkRead(uint64_t client, double inv, double ret, Version v,
                std::vector<uint8_t> data, storage::ObjectId object = 0) {
  ClientOp op;
  op.client = client;
  op.object = object;
  op.kind = ClientOp::Kind::kRead;
  op.outcome = ClientOp::Outcome::kOk;
  op.invoked_at = inv;
  op.returned_at = ret;
  op.version = v;
  op.data = std::move(data);
  return op;
}

AuditOptions LinOptions(std::vector<uint8_t> initial = {}) {
  AuditOptions o;
  o.mode = AuditMode::kLinearizable;
  o.initial_value = std::move(initial);
  return o;
}

// ---------------------------------------------------------------------------
// Known-good histories.

TEST(Linearize, EmptyHistoryOk) {
  AuditVerdict v = AuditOps({}, LinOptions());
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.ToString(), "linearizable");
}

TEST(Linearize, SequentialRunOk) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(AckedWrite(0, 20, 30, 2, Update::Partial(1, {'b'})));
  ops.push_back(OkRead(1, 40, 50, 2, {'a', 'b'}));
  ops.push_back(OkRead(1, 60, 70, 2, {'a', 'b'}));
  AuditVerdict v = AuditOps(ops, LinOptions());
  EXPECT_TRUE(v.ok) << v.ToString();
}

TEST(Linearize, ConcurrentReadMayReturnEitherVersion) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  // Write v2 over [20, 40); a read overlapping it may see v1 or v2.
  ops.push_back(AckedWrite(0, 20, 40, 2, Update::Total({'b'})));
  ops.push_back(OkRead(1, 25, 30, 1, {'a'}));
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
  ops.back() = OkRead(1, 25, 30, 2, {'b'});
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, DefiniteFailureImposesNothing) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  // A definitely-failed write never took effect; reads ignore it.
  ops.push_back(FailedWrite(1, 15, 18, Update::Total({'z'})));
  ops.push_back(OkRead(2, 20, 30, 1, {'a'}));
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, ReadsRespectInitialValue) {
  std::vector<ClientOp> ops;
  ops.push_back(OkRead(0, 0, 5, 0, {'i', 'j'}));
  EXPECT_TRUE(AuditOps(ops, LinOptions({'i', 'j'})).ok);
  EXPECT_FALSE(AuditOps(ops, LinOptions({'x', 'y'})).ok);
}

TEST(Linearize, MultiObjectPartition) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'}), /*object=*/0));
  ops.push_back(AckedWrite(1, 0, 10, 1, Update::Total({'b'}), /*object=*/1));
  ops.push_back(OkRead(2, 20, 30, 1, {'a'}, /*object=*/0));
  ops.push_back(OkRead(2, 40, 50, 1, {'b'}, /*object=*/1));
  AuditVerdict v = AuditOps(ops, LinOptions());
  EXPECT_TRUE(v.ok) << v.ToString();
  // Break only object 1: the verdict must name it.
  ops.push_back(OkRead(3, 60, 70, 0, {}, /*object=*/1));
  v = AuditOps(ops, LinOptions());
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("object 1"), std::string::npos)
      << v.explanation;
}

// ---------------------------------------------------------------------------
// Open-interval (possibly-committed) semantics.

TEST(Linearize, OpenWriteMayTakeEffect) {
  std::vector<ClientOp> ops;
  ops.push_back(OpenWrite(0, 0, Update::Total({'a'})));
  ops.push_back(OkRead(1, 10, 20, 1, {'a'}));  // Roll-forward: it landed.
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, OpenWriteMayBeDropped) {
  std::vector<ClientOp> ops;
  ops.push_back(OpenWrite(0, 0, Update::Total({'a'})));
  ops.push_back(OkRead(1, 10, 20, 0, {'i'}));  // Roll-back: it vanished.
  EXPECT_TRUE(AuditOps(ops, LinOptions({'i'})).ok);
}

TEST(Linearize, OpenWriteObservedThenMissingIsViolation) {
  // Once any read observes the in-doubt write, it is committed; a later
  // read un-observing it is a lost update.
  std::vector<ClientOp> ops;
  ops.push_back(OpenWrite(0, 0, Update::Total({'a'})));
  ops.push_back(OkRead(1, 10, 20, 1, {'a'}));
  ops.push_back(OkRead(1, 30, 40, 0, {'i'}));
  AuditVerdict v = AuditOps(ops, LinOptions({'i'}));
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.inconclusive);
}

TEST(Linearize, OpenWriteNotBeforeItsInvocation) {
  // The in-doubt write was invoked at t=50; a read that finished at t=20
  // cannot have observed it (real-time order).
  std::vector<ClientOp> ops;
  ops.push_back(OkRead(1, 10, 20, 1, {'a'}));
  ops.push_back(OpenWrite(0, 50, Update::Total({'a'})));
  AuditVerdict v = AuditOps(ops, LinOptions());
  EXPECT_FALSE(v.ok);
}

// ---------------------------------------------------------------------------
// The five named violating fixtures (checker-validation suite).

TEST(Linearize, StaleReadCaught) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(AckedWrite(0, 20, 30, 2, Update::Total({'b'})));
  // Invoked after both writes returned, yet observed v1.
  ops.push_back(OkRead(1, 40, 50, 1, {'a'}));
  AuditVerdict v = AuditOps(ops, LinOptions());
  ASSERT_FALSE(v.ok);
  EXPECT_FALSE(v.inconclusive);
  EXPECT_NE(v.explanation.find("stale read"), std::string::npos)
      << v.explanation;
  // Minimization drops both writes: a lone read claiming v1 with no write
  // in the history at all is already the smallest violating sub-history.
  ASSERT_EQ(v.counterexample.size(), 1u);
  EXPECT_EQ(v.counterexample[0].kind, ClientOp::Kind::kRead);
  EXPECT_EQ(v.counterexample[0].version, 1u);
}

TEST(Linearize, LostWriteCaught) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  // Invoked after the ack, yet observed the initial state: the acked
  // write is lost.
  ops.push_back(OkRead(1, 20, 30, 0, {'i'}));
  AuditVerdict v = AuditOps(ops, LinOptions({'i'}));
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("stale read"), std::string::npos)
      << v.explanation;
  // Neither op alone violates: the minimal counterexample is the pair.
  ASSERT_EQ(v.counterexample.size(), 2u);
  EXPECT_EQ(v.counterexample[0].kind, ClientOp::Kind::kWrite);
  EXPECT_EQ(v.counterexample[1].kind, ClientOp::Kind::kRead);
  EXPECT_EQ(v.counterexample[1].version, 0u);
}

TEST(Linearize, CircularReadFromCaught) {
  // Two in-doubt writes; R1's bytes pin the order W1 before W2, R2's pin
  // W2 before W1 — a read-from cycle with no consistent serial order.
  //   W1 = total{'a'}; W2 = patch [1]='b'
  //   W1,W2 replay => "ab";  W2,W1 replay => "a"
  std::vector<ClientOp> ops;
  ops.push_back(OpenWrite(0, 0, Update::Total({'a'})));
  ops.push_back(OpenWrite(1, 0, Update::Partial(1, {'b'})));
  ops.push_back(OkRead(2, 10, 20, 2, {'a', 'b'}));
  ops.push_back(OkRead(2, 30, 40, 2, {'a'}));
  AuditVerdict v = AuditOps(ops, LinOptions());
  ASSERT_FALSE(v.ok);
  EXPECT_FALSE(v.inconclusive);
  // The diagnosis is a replay mismatch on the second read (under the only
  // order satisfying the first).
  EXPECT_NE(v.explanation.find("does not match the replay"),
            std::string::npos)
      << v.explanation;
  EXPECT_FALSE(v.counterexample.empty());
  // Each read alone (with both writes) is satisfiable; the cycle needs
  // both, though minimization may then shed the optional open writes.
  std::vector<ClientOp> one = {ops[0], ops[1], ops[2]};
  EXPECT_TRUE(AuditOps(one, LinOptions()).ok);
  std::vector<ClientOp> other = {ops[0], ops[1], ops[3]};
  EXPECT_TRUE(AuditOps(other, LinOptions()).ok);
}

TEST(Linearize, NonMonotonicReadCaught) {
  // Same client's reads go backwards. Under full linearizability this is
  // a stale read; the dedicated session mode flags exactly the pair.
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(AckedWrite(0, 20, 30, 2, Update::Total({'b'})));
  ops.push_back(OkRead(1, 40, 50, 2, {'b'}));
  ops.push_back(OkRead(1, 60, 70, 1, {'a'}));
  AuditOptions mono = LinOptions();
  mono.mode = AuditMode::kMonotonicReads;
  AuditVerdict v = AuditOps(ops, mono);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("monotonic-reads violation"),
            std::string::npos)
      << v.explanation;
  ASSERT_EQ(v.counterexample.size(), 2u);
  EXPECT_EQ(v.counterexample[0].version, 2u);
  EXPECT_EQ(v.counterexample[1].version, 1u);
  // The full linearizability mode rejects it too.
  EXPECT_FALSE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, ReadYourWritesViolationCaught) {
  // A client's read, invoked after its own write was acked as v3,
  // observes v1.
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(7, 0, 10, 3, Update::Total({'c'})));
  ops.push_back(OkRead(7, 20, 30, 1, {'a'}));
  AuditOptions ryw = LinOptions();
  ryw.mode = AuditMode::kReadYourWrites;
  AuditVerdict v = AuditOps(ops, ryw);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("read-your-writes violation"),
            std::string::npos)
      << v.explanation;
  ASSERT_EQ(v.counterexample.size(), 2u);
  EXPECT_EQ(v.counterexample[0].kind, ClientOp::Kind::kWrite);
  EXPECT_EQ(v.counterexample[1].kind, ClientOp::Kind::kRead);
  // Another client's stale read is NOT a RYW violation (session-local).
  std::vector<ClientOp> other;
  other.push_back(AckedWrite(7, 0, 10, 3, Update::Total({'c'})));
  other.push_back(OkRead(8, 20, 30, 1, {'a'}));
  EXPECT_TRUE(AuditOps(other, ryw).ok);
}

// ---------------------------------------------------------------------------
// Session modes, passing cases.

TEST(Linearize, SessionModesAcceptRelaxedCrossClientReads) {
  // Cross-client staleness is fine under session guarantees.
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(AckedWrite(0, 20, 30, 2, Update::Total({'b'})));
  ops.push_back(OkRead(1, 40, 50, 1, {'a'}));  // Stale but another client.
  AuditOptions session = LinOptions();
  session.mode = AuditMode::kSession;
  EXPECT_TRUE(AuditOps(ops, session).ok);
  EXPECT_FALSE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, ReadYourWritesHonorsConcurrentOwnWrite) {
  // The client's own write had not returned when the read was invoked:
  // no obligation yet.
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(7, 0, 50, 3, Update::Total({'c'})));
  ops.push_back(OkRead(7, 20, 30, 1, {'a'}));
  AuditOptions ryw = LinOptions();
  ryw.mode = AuditMode::kReadYourWrites;
  EXPECT_TRUE(AuditOps(ops, ryw).ok);
}

// ---------------------------------------------------------------------------
// Version pinning and real-time order.

TEST(Linearize, DuplicateAckedVersionCaught) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(AckedWrite(1, 0, 10, 1, Update::Total({'b'})));
  AuditVerdict v = AuditOps(ops, LinOptions());
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("acked version"), std::string::npos)
      << v.explanation;
}

TEST(Linearize, WriteRealTimeOrderEnforced) {
  // v2 returned before v1 was invoked: the serial order (v1 then v2)
  // contradicts real time.
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 2, Update::Total({'b'})));
  ops.push_back(AckedWrite(1, 20, 30, 1, Update::Total({'a'})));
  EXPECT_FALSE(AuditOps(ops, LinOptions()).ok);
}

// ---------------------------------------------------------------------------
// Partial-write and ranged-read semantics.

TEST(Linearize, PartialWriteReplayByteExact) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Partial(0, {'a', 'b'})));
  ops.push_back(AckedWrite(0, 20, 30, 2, Update::Partial(1, {'X'})));
  ops.push_back(OkRead(1, 40, 50, 2, {'a', 'X'}));
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
  // Un-patched bytes are a violation even though the version is right.
  ops.back() = OkRead(1, 40, 50, 2, {'a', 'b'});
  AuditVerdict v = AuditOps(ops, LinOptions());
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("does not match the replay"),
            std::string::npos)
      << v.explanation;
}

TEST(Linearize, ZeroLengthPartialBumpsVersionOnly) {
  std::vector<ClientOp> ops;
  // A zero-length patch at offset 3 grows the object zero-filled.
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Partial(3, {})));
  ops.push_back(OkRead(1, 20, 30, 1, {0, 0, 0}));
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, RangedReadObservesSlice) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a', 'b', 'c'})));
  ClientOp ranged = OkRead(1, 20, 30, 1, {'b', 'c'});
  ranged.read_full = false;
  ranged.read_offset = 1;
  ops.push_back(ranged);
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
  // Same slice with wrong bytes is a violation.
  ops.back().data = {'b', 'x'};
  EXPECT_FALSE(AuditOps(ops, LinOptions()).ok);
}

TEST(Linearize, RangedReadBeyondSizeSeesZeros) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ClientOp ranged = OkRead(1, 20, 30, 1, {0, 0});
  ranged.read_full = false;
  ranged.read_offset = 5;
  ops.push_back(ranged);
  EXPECT_TRUE(AuditOps(ops, LinOptions()).ok);
}

// ---------------------------------------------------------------------------
// Budget, minimization bounds, and the recorder round-trip.

TEST(Linearize, BudgetExhaustionIsInconclusive) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(OkRead(1, 20, 30, 0, {'i'}));
  AuditOptions o = LinOptions({'i'});
  o.max_states = 0;
  AuditVerdict v = AuditOps(ops, o);
  EXPECT_FALSE(v.ok);
  EXPECT_TRUE(v.inconclusive);
  EXPECT_NE(v.ToString().find("INCONCLUSIVE"), std::string::npos);
}

TEST(Linearize, MinimizationCanBeDisabled) {
  std::vector<ClientOp> ops;
  ops.push_back(AckedWrite(0, 0, 10, 1, Update::Total({'a'})));
  ops.push_back(AckedWrite(0, 20, 30, 2, Update::Total({'b'})));
  ops.push_back(OkRead(1, 40, 50, 1, {'a'}));
  AuditOptions o = LinOptions();
  o.minimize_counterexample = false;
  AuditVerdict v = AuditOps(ops, o);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.counterexample.size(), 3u);  // The whole sub-history.
}

TEST(Linearize, RecorderOpenIntervalLifecycle) {
  ClientHistory h;
  uint64_t w = h.InvokeWrite(0, 0, Update::Total({'a'}), 5);
  uint64_t r = h.InvokeRead(1, 0, 6);
  EXPECT_FALSE(h.settled(w));
  // Abandon wins over a late response: the client never saw the ack.
  h.Abandon(w, 105);
  h.ReturnWrite(w, 120, 1);
  EXPECT_EQ(h.ops()[w].outcome, ClientOp::Outcome::kOpen);
  // An indefinite failure also stays open.
  h.Fail(r, 110, /*definite=*/false);
  EXPECT_EQ(h.ops()[r].outcome, ClientOp::Outcome::kOpen);
  // Both open ops may have landed or not: any read version 0/1 works.
  ClientHistory h2;
  h2.InvokeWrite(0, 0, Update::Total({'a'}), 5);
  AuditVerdict v = AuditHistory(h2, LinOptions());
  EXPECT_TRUE(v.ok);
}

TEST(Linearize, JsonlRoundTripPreservesVerdict) {
  ClientHistory h;
  uint64_t w1 = h.InvokeWrite(0, 0, Update::Partial(1, {'b'}), 0);
  h.ReturnWrite(w1, 10, 1);
  uint64_t w2 = h.InvokeWrite(1, 3, Update::Total({'x', 'y'}), 20);
  h.Abandon(w2, 90);
  uint64_t r1 = h.InvokeRead(2, 3, 30);
  h.ReturnRead(r1, 40, 1, {0, 'b'});
  uint64_t r2 = h.InvokeRead(3, 3, 50);
  h.Fail(r2, 60, /*definite=*/true);

  std::string jsonl = h.ToJsonl();
  ClientHistory parsed;
  ASSERT_TRUE(ClientHistory::FromJsonl(jsonl, &parsed));
  ASSERT_EQ(parsed.ops().size(), h.ops().size());
  for (size_t i = 0; i < h.ops().size(); ++i) {
    const ClientOp& a = h.ops()[i];
    const ClientOp& b = parsed.ops()[i];
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.invoked_at, b.invoked_at);
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.update.total, b.update.total);
    EXPECT_EQ(a.update.offset, b.update.offset);
    EXPECT_EQ(a.update.bytes, b.update.bytes);
    EXPECT_EQ(a.data, b.data);
  }
  EXPECT_EQ(AuditHistory(h, LinOptions()).ok,
            AuditHistory(parsed, LinOptions()).ok);
}

}  // namespace
}  // namespace dcp::analysis
