// End-to-end client-consistency audits: every seeded fault family the
// harness owns — nemesis scenarios (crash storms, partitions, link
// chaos), crash-point storms against the durable engine — runs with a
// per-client history recorder attached to the workload, and the run's
// client-observable history must be linearizable (Wing-Gong search over
// the versioned-object model, open intervals treated as concurrent). A
// failure prints the minimized counterexample plus the JSONL history
// dump. Also the regression for client-side timeouts: abandoned
// operations must be recorded open-interval, not discarded, and the
// recorder must never perturb a seeded run.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "analysis/client_history.h"
#include "analysis/linearize.h"
#include "harness/nemesis.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::harness {
namespace {

using protocol::Cluster;
using protocol::ClusterOptions;
using protocol::CoterieKind;

constexpr sim::Time kHorizon = 12000;

ClusterOptions BaseOptions(CoterieKind kind, uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = kind;
  opts.seed = seed;
  opts.initial_value = std::vector<uint8_t>(32, 0);
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 300;
  opts.fault_model.global.drop = 0.05;
  opts.fault_model.global.duplicate = 0.05;
  opts.fault_model.global.reorder = 0.10;
  opts.fault_model.global.reorder_spike = 20.0;
  return opts;
}

ClusterOptions DurableOptions(CoterieKind kind, uint64_t seed) {
  ClusterOptions opts = BaseOptions(kind, seed);
  opts.durability.enabled = true;
  opts.durability.crash.tear_probability = 0.5;
  opts.durability.checkpoint_threshold_bytes = 4096;
  return opts;
}

bool RunToQuiescence(Cluster& cluster, sim::Time budget) {
  const sim::Time slice = 500;
  for (sim::Time spent = 0; spent < budget; spent += slice) {
    cluster.RunFor(slice);
    if (cluster.Quiescent()) return true;
  }
  return cluster.Quiescent();
}

analysis::AuditOptions AuditOptionsFor(const ClusterOptions& opts) {
  analysis::AuditOptions a;
  a.mode = analysis::AuditMode::kLinearizable;
  a.initial_value = opts.initial_value;
  return a;
}

/// Runs the audit and, on failure, attaches the minimized counterexample
/// plus the full JSONL history so the run is reproducible offline.
::testing::AssertionResult AuditPasses(const analysis::ClientHistory& history,
                                       const analysis::AuditOptions& options) {
  analysis::AuditVerdict v = analysis::AuditHistory(history, options);
  if (v.ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << v.ToString() << "\n--- client history (jsonl) ---\n"
         << history.ToJsonl();
}

// --- the seeded audit sweeps ----------------------------------------------

class AuditedNemesisSweep
    : public ::testing::TestWithParam<std::tuple<CoterieKind, int>> {};

TEST_P(AuditedNemesisSweep, ClientHistoryIsLinearizable) {
  auto [kind, seed] = GetParam();
  ClusterOptions opts = BaseOptions(kind, uint64_t(seed));
  Cluster cluster(opts);

  Scenario scenario = RandomScenario(uint64_t(seed) * 7919 + 13,
                                     cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = uint64_t(seed) + 1000;
  wopts.client_history = &history;
  // A client-side deadline well above common-case latency: under the
  // fault storm some operations get abandoned, exercising open-interval
  // (possibly-committed) entries in the audited history.
  wopts.op_timeout = 2000;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();
  ASSERT_TRUE(RunToQuiescence(cluster, 20000))
      << "cluster failed to quiesce (seed " << seed << ")";

  EXPECT_GT(workload.writes().attempted + workload.reads().attempted, 20u);
  EXPECT_FALSE(history.ops().empty());
  EXPECT_TRUE(AuditPasses(history, AuditOptionsFor(opts)));

  // Linearizable histories satisfy the weaker session modes a fortiori.
  analysis::AuditOptions session = AuditOptionsFor(opts);
  session.mode = analysis::AuditMode::kSession;
  EXPECT_TRUE(AuditPasses(history, session));
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<CoterieKind, int>>& info) {
  auto [kind, seed] = info.param;
  std::string k = kind == CoterieKind::kGrid       ? "Grid"
                  : kind == CoterieKind::kMajority ? "Majority"
                                                   : "Tree";
  return k + "Seed" + std::to_string(seed);
}

// The seeded 20x3-coterie audit matrix.
INSTANTIATE_TEST_SUITE_P(
    Seeds, AuditedNemesisSweep,
    ::testing::Combine(::testing::Values(CoterieKind::kGrid,
                                         CoterieKind::kMajority,
                                         CoterieKind::kTree),
                       ::testing::Range(1, 21)),
    SweepName);

class AuditedCrashPointSweep
    : public ::testing::TestWithParam<std::tuple<CoterieKind, int>> {};

TEST_P(AuditedCrashPointSweep, ClientHistoryIsLinearizable) {
  auto [kind, seed] = GetParam();
  ClusterOptions opts = DurableOptions(kind, uint64_t(seed));
  Cluster cluster(opts);

  Scenario scenario = CrashPointScenario(uint64_t(seed) * 104729 + 7,
                                         cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = uint64_t(seed) + 1000;
  wopts.client_history = &history;
  wopts.op_timeout = 2000;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();
  ASSERT_TRUE(RunToQuiescence(cluster, 20000))
      << "cluster failed to quiesce (seed " << seed << ")";

  EXPECT_FALSE(history.ops().empty());
  EXPECT_TRUE(AuditPasses(history, AuditOptionsFor(opts)));
}

std::string CrashSweepName(
    const ::testing::TestParamInfo<std::tuple<CoterieKind, int>>& info) {
  auto [kind, seed] = info.param;
  std::string k = kind == CoterieKind::kGrid ? "Grid" : "Majority";
  return k + "Seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AuditedCrashPointSweep,
    ::testing::Combine(::testing::Values(CoterieKind::kGrid,
                                         CoterieKind::kMajority),
                       ::testing::Range(1, 11)),
    CrashSweepName);

// --- the timeout regression (satellite fix) -------------------------------

// Workload timeouts used to discard the operation entirely. They must be
// recorded as open-interval invocations (the op may have committed) and
// surfaced in OpStats::timed_out — not silently dropped.
TEST(AuditTimeouts, AbandonedOpsAreRecordedOpenInterval) {
  ClusterOptions opts;
  opts.num_nodes = 3;
  opts.coterie = CoterieKind::kMajority;
  opts.seed = 11;
  opts.initial_value = std::vector<uint8_t>(8, 0);
  // Half of all messages vanish. A dropped *request* fast-fails the op
  // (transport on_failed), but a delivered request whose *response* is
  // dropped stalls the coordinator until the 100-unit RPC timeout —
  // well past the client's 50-unit deadline below, so a steady fraction
  // of operations is abandoned while genuinely still in flight.
  opts.fault_model.global.drop = 0.5;
  Cluster cluster(opts);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.02;
  wopts.seed = 7;
  wopts.client_history = &history;
  wopts.op_timeout = 50;  // Below the 100-unit RPC timeout: the client
                          // gives up while the op is still undecided.
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(4000);
  workload.Stop();
  cluster.RunFor(2000);

  const OpStats& w = workload.writes();
  const OpStats& r = workload.reads();
  ASSERT_GT(w.attempted + r.attempted, 10u);
  EXPECT_GT(w.timed_out + r.timed_out, 0u);

  // Every abandoned op is present, settled, and open-interval.
  uint64_t open_ops = 0;
  for (const analysis::ClientOp& op : history.ops()) {
    if (op.outcome == analysis::ClientOp::Outcome::kOpen) ++open_ops;
  }
  EXPECT_GE(open_ops, w.timed_out + r.timed_out);
  EXPECT_EQ(history.ops().size(), w.attempted + r.attempted);

  // Possibly-committed ops constrain nothing by themselves: the audit
  // treats them as concurrent and the history passes.
  analysis::AuditOptions a;
  a.initial_value = opts.initial_value;
  EXPECT_TRUE(AuditPasses(history, a));
}

// A late response after the client gave up must not flip the op's
// outcome or double-count stats. Driven through a cluster whose single
// partition heals after the deadline.
TEST(AuditTimeouts, LateResponseAfterAbandonIsIgnored) {
  ClusterOptions opts;
  opts.num_nodes = 3;
  opts.coterie = CoterieKind::kMajority;
  opts.seed = 12;
  opts.initial_value = std::vector<uint8_t>(8, 0);
  Cluster cluster(opts);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.02;
  wopts.seed = 9;
  wopts.client_history = &history;
  wopts.op_timeout = 1;  // Far below any achievable round trip.
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(3000);
  workload.Stop();
  cluster.RunFor(2000);

  const OpStats& w = workload.writes();
  const OpStats& r = workload.reads();
  ASSERT_GT(w.attempted + r.attempted, 10u);
  // Everything abandoned; completions that landed later were ignored.
  EXPECT_EQ(w.committed + r.committed, 0u);
  EXPECT_EQ(w.failed + r.failed, 0u);
  EXPECT_EQ(w.timed_out + r.timed_out, w.attempted + r.attempted);
  for (const analysis::ClientOp& op : history.ops()) {
    EXPECT_EQ(op.outcome, analysis::ClientOp::Outcome::kOpen)
        << op.Describe();
  }
  // The protocol still did the work behind the clients' backs — some
  // writes committed. The audit must accept them as rolled-forward.
  analysis::AuditOptions a;
  a.initial_value = opts.initial_value;
  EXPECT_TRUE(AuditPasses(history, a));
}

// --- observation purity ----------------------------------------------------

struct RunFingerprint {
  net::NetworkStats network_stats;
  uint64_t events_executed = 0;
  std::vector<storage::Version> write_versions;
  std::vector<uint64_t> replica_fingerprints;
};

RunFingerprint RunNemesisOnce(uint64_t seed, analysis::ClientHistory* history) {
  Cluster cluster(BaseOptions(CoterieKind::kGrid, seed));
  Scenario scenario =
      RandomScenario(seed * 7919 + 13, cluster.num_nodes(), kHorizon);
  Nemesis nemesis(&cluster, scenario);

  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = seed + 1000;
  wopts.client_history = history;  // The only difference between runs.
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();
  cluster.RunFor(8000);

  RunFingerprint fp;
  fp.network_stats = cluster.network().stats();
  fp.events_executed = cluster.simulator().events_executed();
  for (const auto& w : cluster.history().writes()) {
    fp.write_versions.push_back(w.version);
  }
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    fp.replica_fingerprints.push_back(
        cluster.node(i).store().object().Fingerprint());
  }
  return fp;
}

// Attaching the recorder draws no randomness and schedules nothing, so a
// recorded run replays byte-identically to an unrecorded one.
TEST(AuditDeterminism, RecorderDoesNotPerturbSeededRuns) {
  analysis::ClientHistory history;
  RunFingerprint with = RunNemesisOnce(321, &history);
  RunFingerprint without = RunNemesisOnce(321, nullptr);
  EXPECT_EQ(with.network_stats, without.network_stats);
  EXPECT_EQ(with.events_executed, without.events_executed);
  EXPECT_EQ(with.write_versions, without.write_versions);
  EXPECT_EQ(with.replica_fingerprints, without.replica_fingerprints);
  EXPECT_FALSE(history.ops().empty());
}

// The JSONL export of a real adversarial run round-trips and audits to
// the same verdict — the offline-analysis contract.
TEST(AuditExport, RealRunHistoryRoundTripsThroughJsonl) {
  ClusterOptions opts = BaseOptions(CoterieKind::kMajority, 5);
  Cluster cluster(opts);
  Scenario scenario = RandomScenario(5 * 7919 + 13, cluster.num_nodes(), 6000);
  Nemesis nemesis(&cluster, scenario);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.01;
  wopts.seed = 1005;
  wopts.client_history = &history;
  wopts.op_timeout = 2000;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(6000);
  workload.Stop();
  nemesis.StopAndHeal();
  cluster.RunFor(8000);

  analysis::ClientHistory parsed;
  ASSERT_TRUE(analysis::ClientHistory::FromJsonl(history.ToJsonl(), &parsed));
  ASSERT_EQ(parsed.ops().size(), history.ops().size());
  analysis::AuditOptions a = AuditOptionsFor(opts);
  analysis::AuditVerdict direct = analysis::AuditHistory(history, a);
  analysis::AuditVerdict roundtrip = analysis::AuditHistory(parsed, a);
  EXPECT_EQ(direct.ok, roundtrip.ok);
  EXPECT_TRUE(direct.ok) << direct.ToString();
}

}  // namespace
}  // namespace dcp::harness
