// Mutation tests for the end-to-end consistency audit: deliberately
// disable a protocol defense behind a test-only hook
// (ReplicaNodeOptions::MutationHooks), run a seeded fault storm, and
// assert the client-history auditor catches the seeded violation with a
// minimized counterexample. This proves the audit has teeth: each hook
// resurrects a real bug class (reading around in-doubt prepared writes;
// serving stale replicas as current) that the protocol's defenses exist
// to prevent — if the auditor cannot see these, it cannot see a
// regression either.
//
// Both scenarios stretch the repair windows the defenses guard
// (background propagation, cooperative termination) far beyond their
// defaults. That is deliberate: with instant repair, a disabled defense
// is often masked within a round-trip or two, and the client-visible
// window shrinks to near nothing. A slow-repair cluster is still a
// legal configuration — the honest control runs below must stay
// linearizable under the exact same knobs.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/client_history.h"
#include "analysis/linearize.h"
#include "harness/nemesis.h"
#include "harness/workload.h"
#include "protocol/cluster.h"

namespace dcp::harness {
namespace {

using protocol::Cluster;
using protocol::ClusterOptions;
using protocol::CoterieKind;

constexpr sim::Time kHorizon = 8000;

struct MutationRun {
  analysis::AuditVerdict verdict;
  uint64_t ops_recorded = 0;
  uint64_t hook_fired = 0;  ///< mutation.* counter for the active hook.
};

/// One seeded adversarial run with the given cluster options and fault
/// schedule, returning the audit verdict over the client-observed
/// history.
MutationRun RunAudited(ClusterOptions opts, uint64_t seed,
                       const Scenario& scenario,
                       const std::string& hook_counter) {
  Cluster cluster(opts);
  Nemesis nemesis(&cluster, scenario);

  analysis::ClientHistory history;
  WorkloadDriver::Options wopts;
  wopts.arrival_rate = 0.02;
  wopts.seed = seed + 1000;
  wopts.client_history = &history;
  wopts.op_timeout = 2000;
  WorkloadDriver workload(&cluster, wopts);

  cluster.RunFor(kHorizon);
  workload.Stop();
  nemesis.StopAndHeal();
  cluster.RunFor(12000);  // Heal window; quiescence not asserted — the
                          // mutated protocol forfeits that guarantee.

  analysis::AuditOptions a;
  a.mode = analysis::AuditMode::kLinearizable;
  a.initial_value = opts.initial_value;
  MutationRun run;
  run.verdict = analysis::AuditHistory(history, a);
  run.ops_recorded = history.ops().size();
  run.hook_fired = cluster.metrics().counter(hook_counter)->value();
  return run;
}

/// Scans seeds until the auditor reports a definite violation; returns
/// the seed (0 if none found). Requires the counterexample to be
/// non-empty and minimized on the catch.
uint64_t ScanForCaughtViolation(
    const std::function<ClusterOptions(uint64_t)>& make_opts,
    const std::function<Scenario(uint64_t)>& make_scenario,
    const std::string& hook_counter, uint64_t max_seed,
    std::string* diagnosis) {
  uint64_t windows_seen = 0;
  for (uint64_t seed = 1; seed <= max_seed; ++seed) {
    MutationRun run =
        RunAudited(make_opts(seed), seed, make_scenario(seed), hook_counter);
    EXPECT_GT(run.ops_recorded, 0u);
    windows_seen += run.hook_fired;
    if (!run.verdict.ok && !run.verdict.inconclusive) {
      EXPECT_FALSE(run.verdict.counterexample.empty())
          << "violation without a counterexample: "
          << run.verdict.ToString();
      *diagnosis = run.verdict.ToString();
      return seed;
    }
  }
  // The scan failed. Distinguish "the hook never even fired" (scenario
  // no longer reaches the defense) from "it fired but stayed invisible
  // to clients" (audit lost its teeth) — different bugs.
  ADD_FAILURE() << "no violation caught in " << max_seed
                << " seeds; hook fired " << windows_seen << " times";
  return 0;
}

// --- hook 1: skip RelockStaged on recovery --------------------------------

// Without re-locking staged (prepared-but-undecided) actions on
// recovery, a reader can lock around an in-doubt write and return data a
// globally committed transaction already superseded.
//
// The storm that makes this client-visible: a train of total staged
// crashes (every node holding a prepared action dies mid-commit) against
// a grid coterie. When most or all of a write's participants crash
// between prepare and commit, the acked write survives only in their
// staged WAL entries; with the relock skipped, their recovered replicas
// serve the pre-write state to any read cover that dodges the surviving
// witnesses. Grid covers are 3 nodes, so dodging happens; majority
// quorums (contiguous 5-of-9 arcs) always re-intersect the witnesses,
// which is why this test pins kGrid. Message drops keep participants
// staged long enough (a dropped phase-2 commit leaves the participant
// in-doubt until its termination poll) for the crash train to connect.
TEST(AuditMutations, SkipRelockStagedIsCaught) {
  auto make_opts = [](uint64_t seed) {
    ClusterOptions opts;
    opts.num_nodes = 9;
    opts.coterie = CoterieKind::kGrid;
    opts.seed = seed;
    opts.initial_value = std::vector<uint8_t>(32, 0);
    opts.start_epoch_daemons = false;  // Keep the 3x3 layout fixed.
    opts.fault_model.global.drop = 0.05;
    opts.durability.enabled = true;
    opts.durability.crash.tear_probability = 0.5;
    opts.durability.checkpoint_threshold_bytes = 4096;
    // Slow repair: recovered replicas stay behind, in-doubt actions stay
    // undecided, for thousands of ticks instead of a round-trip.
    opts.node_options.propagation_start_delay = 10000;
    opts.node_options.propagation_retry_delay = 10000;
    opts.node_options.termination_poll_interval = 5000;
    opts.node_options.mutation_hooks.skip_relock_staged = true;
    return opts;
  };
  auto make_scenario = [](uint64_t seed) {
    Scenario sc;
    sc.name = "staged-total-" + std::to_string(seed);
    for (sim::Time t = 300; t < kHorizon * 0.7; t += 700) {
      NemesisEvent ev;
      ev.kind = NemesisEvent::Kind::kStagedCrash;
      ev.at = t + static_cast<sim::Time>(seed % 7) * 13;
      ev.duration = 300;
      ev.crash_count = 9;  // Everyone mid-commit dies.
      sc.events.push_back(ev);
    }
    return sc;
  };
  std::string diagnosis;
  uint64_t caught =
      ScanForCaughtViolation(make_opts, make_scenario,
                             "mutation.relock_skipped",
                             /*max_seed=*/30, &diagnosis);
  ASSERT_NE(caught, 0u)
      << "no seed produced a client-visible violation with RelockStaged "
         "disabled — the audit has no teeth against the relock bug";
  SCOPED_TRACE(diagnosis);

  // Control: the same seed with the defense restored must pass.
  ClusterOptions control = make_opts(caught);
  control.node_options.mutation_hooks.skip_relock_staged = false;
  MutationRun clean = RunAudited(control, caught, make_scenario(caught),
                                 "mutation.relock_skipped");
  EXPECT_TRUE(clean.verdict.ok) << clean.verdict.ToString();
  EXPECT_EQ(clean.hook_fired, 0u);
}

// --- hook 2: serve stale-flagged replicas as current ----------------------

// Lying about the stale flag in read-lock responses lets a read quorum
// whose only witness of the newest write is a stale-flagged replica
// serve old data instead of escalating to a heavy read (or failing).
// Partial-write propagation under partitions and crashes creates stale
// replicas constantly; slowing background propagation keeps them stale
// long enough for reads to trip over them, so random nemesis storms
// produce a stale read the auditor catches.
TEST(AuditMutations, ServeStaleReadsIsCaught) {
  auto make_opts = [](uint64_t seed) {
    ClusterOptions opts;
    opts.num_nodes = 9;
    opts.coterie = CoterieKind::kMajority;
    opts.seed = seed;
    opts.initial_value = std::vector<uint8_t>(32, 0);
    opts.start_epoch_daemons = true;
    opts.daemon_options.check_interval = 300;
    opts.fault_model.global.drop = 0.05;
    opts.fault_model.global.duplicate = 0.05;
    opts.fault_model.global.reorder = 0.10;
    opts.fault_model.global.reorder_spike = 20.0;
    // Slow repair: a replica marked stale stays stale instead of being
    // caught up within a propagation round-trip.
    opts.node_options.propagation_start_delay = 2000;
    opts.node_options.propagation_retry_delay = 2000;
    opts.node_options.mutation_hooks.serve_stale_reads = true;
    return opts;
  };
  auto make_scenario = [](uint64_t seed) {
    return RandomScenario(seed * 7919 + 13, 9, kHorizon);
  };
  std::string diagnosis;
  uint64_t caught =
      ScanForCaughtViolation(make_opts, make_scenario,
                             "mutation.stale_lied",
                             /*max_seed=*/20, &diagnosis);
  ASSERT_NE(caught, 0u)
      << "no seed produced a client-visible violation with the stale flag "
         "suppressed — the audit has no teeth against stale reads";
  SCOPED_TRACE(diagnosis);

  ClusterOptions control = make_opts(caught);
  control.node_options.mutation_hooks.serve_stale_reads = false;
  MutationRun clean = RunAudited(control, caught, make_scenario(caught),
                                 "mutation.stale_lied");
  EXPECT_TRUE(clean.verdict.ok) << clean.verdict.ToString();
  EXPECT_EQ(clean.hook_fired, 0u);
}

}  // namespace
}  // namespace dcp::harness
