#include "protocol/epoch_daemon.h"

#include <gtest/gtest.h>

#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

ClusterOptions DaemonOptions(uint32_t n = 9) {
  ClusterOptions opts;
  opts.num_nodes = n;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = 13;
  opts.initial_value = {1};
  opts.start_epoch_daemons = true;
  opts.daemon_options.check_interval = 200;
  opts.daemon_options.leader_timeout = 600;
  return opts;
}

TEST(EpochDaemon, HighestNodeLeadsByDefault) {
  Cluster cluster(DaemonOptions());
  cluster.RunFor(1000);
  // Everyone should agree the highest node (8) leads, via announcements.
  for (uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(cluster.node(i).self(), i);
  }
  // No epoch change needed in a healthy cluster.
  for (uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(cluster.node(i).store().epoch_number(), 0u);
  }
}

TEST(EpochDaemon, DaemonDetectsFailureAndChangesEpoch) {
  Cluster cluster(DaemonOptions());
  cluster.RunFor(500);
  cluster.Crash(4);
  cluster.RunFor(1500);  // Next periodic check notices and re-forms.
  NodeSet expected = NodeSet::Universe(9);
  expected.Erase(4);
  for (NodeId i = 0; i < 9; ++i) {
    if (i == 4) continue;
    EXPECT_GE(cluster.node(i).store().epoch_number(), 1u) << "node " << i;
    EXPECT_EQ(cluster.node(i).store().epoch_list(), expected) << "node " << i;
  }
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
}

TEST(EpochDaemon, LeaderCrashTriggersElection) {
  Cluster cluster(DaemonOptions());
  cluster.RunFor(500);
  cluster.Crash(8);  // The initial leader.
  // After the leader timeout, node 7 campaigns, finds no higher node
  // alive, assumes leadership, and runs the epoch check.
  cluster.RunFor(4000);
  NodeSet expected = NodeSet::Universe(9);
  expected.Erase(8);
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_GE(cluster.node(i).store().epoch_number(), 1u) << "node " << i;
    EXPECT_EQ(cluster.node(i).store().epoch_list(), expected);
  }
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
}

TEST(EpochDaemon, RecoveredLeaderReclaimsLeadership) {
  Cluster cluster(DaemonOptions());
  cluster.RunFor(500);
  cluster.Crash(8);
  cluster.RunFor(4000);  // Node 7 leads; epoch excludes 8.
  cluster.Recover(8);
  cluster.RunFor(4000);  // Node 8 contests and re-leads; epoch re-admits 8.
  for (NodeId i = 0; i < 9; ++i) {
    EXPECT_EQ(cluster.node(i).store().epoch_list(), NodeSet::Universe(9))
        << "node " << i;
  }
  // Node 8 was re-admitted and caught up by propagation if needed.
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
}

TEST(EpochDaemon, AutonomousOperationUnderFailures) {
  // Writes keep succeeding while daemons autonomously track a churn of
  // failures and repairs.
  Cluster cluster(DaemonOptions());
  int committed = 0;
  for (int round = 0; round < 6; ++round) {
    NodeId victim = static_cast<NodeId>((round * 2) % 9);
    cluster.Crash(victim);
    cluster.RunFor(1500);  // Daemon reacts.
    for (int i = 0; i < 3; ++i) {
      NodeId coord = static_cast<NodeId>((victim + 1 + i) % 9);
      auto w = cluster.WriteSyncRetry(coord,
                                      Update::Partial(0, {uint8_t(round)}));
      if (w.ok()) ++committed;
    }
    cluster.Recover(victim);
    cluster.RunFor(1500);
  }
  EXPECT_EQ(committed, 18);
  cluster.RunFor(4000);
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
  // The daemons did real work.
  uint64_t checks = 0;
  for (uint32_t i = 0; i < 9; ++i) {
    checks = std::max<uint64_t>(checks,
                                cluster.node(i).store().epoch_number());
  }
  EXPECT_GE(checks, 10u);
}

TEST(EpochDaemon, NoInterferenceWithoutFailures) {
  // Section 4.3: "in the absence of failures epoch checking does not
  // interfere with reads and writes" — polls take no locks, and no epoch
  // change means no 2PC.
  Cluster cluster(DaemonOptions());
  cluster.RunFor(5000);
  const auto& stats = cluster.network().stats();
  EXPECT_GT(stats.by_type.at("epoch-poll").sent, 100u);
  EXPECT_EQ(stats.by_type.count("2pc-prepare"), 0u);
  for (uint32_t i = 0; i < 9; ++i) {
    EXPECT_FALSE(cluster.node(i).store().IsLocked());
  }
}

}  // namespace
}  // namespace dcp::protocol
