// Unit tests for the durable storage engine: the simulated disk's
// sync/tear semantics, WAL framing and torn-tail recovery scans, group
// commit batching, checkpoint round-trips, and DurableStore's redo-record
// replay — including the kDecide-vs-kResolve distinction that keeps a
// crashed coordinator's staged action recoverable.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "store/codec.h"
#include "store/durable_store.h"
#include "store/sim_disk.h"
#include "store/wal.h"

namespace dcp::store {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// --- CRC-32 ---------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The canonical check value for CRC-32/zlib.
  std::vector<uint8_t> data = Bytes("123456789");
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc32Test, SeedChainsAcrossPieces) {
  std::vector<uint8_t> whole = Bytes("hello, world");
  std::vector<uint8_t> head = Bytes("hello,");
  std::vector<uint8_t> tail = Bytes(" world");
  EXPECT_EQ(Crc32(whole), Crc32(tail, Crc32(head)));
}

// --- codec ----------------------------------------------------------------

TEST(CodecTest, ByteReaderFlagsOverrun) {
  ByteWriter w;
  w.U32(7);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_TRUE(r.ok());
  (void)r.U64();  // Past the end.
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, BytesLengthPrefixIsBoundChecked) {
  // A length prefix claiming more payload than exists must not read past
  // the buffer — exactly the shape a torn record presents to recovery.
  ByteWriter w;
  w.U32(1000);  // Claims 1000 bytes...
  w.U8(1);      // ...but only one follows.
  ByteReader r(w.buffer());
  (void)r.Bytes();
  EXPECT_FALSE(r.ok());
}

// --- SimDisk --------------------------------------------------------------

DiskCrashModel DropModel() {
  DiskCrashModel m;
  m.tear_probability = 0;  // Crashes always drop the whole tail.
  m.seed = 1;
  return m;
}

DiskCrashModel TearModel(uint64_t seed) {
  DiskCrashModel m;
  m.tear_probability = 1;  // Crashes always keep a random prefix.
  m.seed = seed;
  return m;
}

TEST(SimDiskTest, AppendIsVolatileUntilSync) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskOptions{}, DropModel());
  SimDisk::FileId f = disk.OpenFile("wal");

  disk.Append(f, Bytes("abc"));
  EXPECT_EQ(disk.End(f), 3u);
  EXPECT_EQ(disk.DurableEnd(f), 0u);

  bool synced = false;
  disk.Sync(f, [&] { synced = true; });
  EXPECT_FALSE(synced);  // Durability costs simulated time.
  sim.Run();
  EXPECT_TRUE(synced);
  EXPECT_EQ(disk.DurableEnd(f), 3u);
  EXPECT_EQ(disk.DurableImage(f), Bytes("abc"));
}

TEST(SimDiskTest, BytesAppendedDuringSyncStayInTail) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskOptions{}, DropModel());
  SimDisk::FileId f = disk.OpenFile("wal");

  disk.Append(f, Bytes("first"));
  bool synced = false;
  disk.Sync(f, [&] { synced = true; });
  // Lands while the barrier is in flight: fsync promises nothing for it.
  disk.Append(f, Bytes("second"));
  sim.Run();
  EXPECT_TRUE(synced);
  EXPECT_EQ(disk.DurableImage(f), Bytes("first"));
  EXPECT_EQ(disk.End(f), 11u);
}

TEST(SimDiskTest, CrashDropsUnsyncedTailWhole) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskOptions{}, DropModel());
  SimDisk::FileId f = disk.OpenFile("wal");

  disk.Append(f, Bytes("durable"));
  bool synced = false;
  disk.Sync(f, [&] { synced = true; });
  sim.Run();
  ASSERT_TRUE(synced);

  disk.Append(f, Bytes("doomed"));
  bool late_sync = false;
  disk.Sync(f, [&] { late_sync = true; });
  disk.Crash();
  sim.Run();
  EXPECT_FALSE(late_sync);  // In-flight barriers never complete.
  EXPECT_EQ(disk.DurableImage(f), Bytes("durable"));
  EXPECT_EQ(disk.End(f), disk.DurableEnd(f));  // Tail gone.
}

TEST(SimDiskTest, CrashTearKeepsBytePrefixOfTail) {
  // With tear_probability = 1 the surviving image must be a strict byte
  // prefix of what was appended — never a hole, never reordered bytes.
  std::vector<uint8_t> appended;
  for (int i = 0; i < 64; ++i) appended.push_back(static_cast<uint8_t>(i));

  bool saw_partial_tear = false;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    sim::Simulator sim;
    SimDisk disk(&sim, DiskOptions{}, TearModel(seed));
    SimDisk::FileId f = disk.OpenFile("wal");
    disk.Append(f, appended);
    disk.Crash();

    const std::vector<uint8_t>& image = disk.DurableImage(f);
    ASSERT_LE(image.size(), appended.size());
    EXPECT_TRUE(std::equal(image.begin(), image.end(), appended.begin()))
        << "torn image is not a prefix (seed " << seed << ")";
    if (!image.empty() && image.size() < appended.size()) {
      saw_partial_tear = true;
    }
  }
  EXPECT_TRUE(saw_partial_tear) << "no seed produced a mid-tail tear";
}

TEST(SimDiskTest, CrashModelIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    SimDisk disk(&sim, DiskOptions{}, TearModel(seed));
    SimDisk::FileId f = disk.OpenFile("wal");
    std::vector<uint8_t> data(128, 0xAB);
    disk.Append(f, data);
    disk.Crash();
    return disk.DurableImage(f).size();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(SimDiskTest, ReplaceStartsFreshLsnSpaceAndSurvivesViaOldOnCrash) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskOptions{}, DropModel());
  SimDisk::FileId f = disk.OpenFile("ckpt");

  bool replaced = false;
  disk.Replace(f, Bytes("v1"), [&] { replaced = true; });
  sim.Run();
  ASSERT_TRUE(replaced);
  EXPECT_EQ(disk.BaseLsn(f), 0u);
  EXPECT_EQ(disk.DurableImage(f), Bytes("v1"));

  // A crash mid-replace keeps the *old* contents (write-temp + rename).
  bool second = false;
  disk.Replace(f, Bytes("v2-much-longer"), [&] { second = true; });
  disk.Crash();
  sim.Run();
  EXPECT_FALSE(second);
  EXPECT_EQ(disk.DurableImage(f), Bytes("v1"));
}

TEST(SimDiskTest, TruncatePrefixKeepsLaterLsnsStable) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskOptions{}, DropModel());
  SimDisk::FileId f = disk.OpenFile("wal");

  disk.Append(f, Bytes("0123456789"));
  disk.Sync(f, [] {});
  sim.Run();
  disk.TruncatePrefix(f, 4);
  EXPECT_EQ(disk.BaseLsn(f), 4u);
  EXPECT_EQ(disk.DurableEnd(f), 10u);
  EXPECT_EQ(disk.DurableImage(f), Bytes("456789"));
}

// --- Wal ------------------------------------------------------------------

struct WalFixture {
  sim::Simulator sim;
  SimDisk disk;
  SimDisk::FileId file;
  Wal wal;

  explicit WalFixture(DiskCrashModel crash = DropModel(),
                      WalOptions options = {})
      : disk(&sim, DiskOptions{}, crash),
        file(disk.OpenFile("wal")),
        wal(&sim, &disk, file, options) {}

  struct Seen {
    uint64_t lsn;
    uint8_t type;
    std::vector<uint8_t> payload;
  };
  std::vector<Seen> ScanAll(WalScanStats* stats = nullptr) {
    std::vector<Seen> out;
    WalScanStats s = wal.Scan([&](uint64_t lsn, uint8_t type, ByteReader& r) {
      std::vector<uint8_t> payload;
      while (r.remaining() > 0) payload.push_back(r.U8());
      out.push_back({lsn, type, std::move(payload)});
    });
    if (stats) *stats = s;
    return out;
  }
};

TEST(WalTest, AppendCommitScanRoundTrip) {
  WalFixture fx;
  fx.wal.Append(1, Bytes("alpha"));
  fx.wal.Append(2, Bytes("beta"));
  bool committed = false;
  fx.wal.Commit([&] { committed = true; });
  fx.sim.Run();
  ASSERT_TRUE(committed);

  WalScanStats stats;
  auto seen = fx.ScanAll(&stats);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].type, 1u);
  EXPECT_EQ(seen[0].payload, Bytes("alpha"));
  EXPECT_EQ(seen[1].type, 2u);
  EXPECT_EQ(seen[1].payload, Bytes("beta"));
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_EQ(stats.valid_end_lsn, fx.wal.durable_end_lsn());
}

TEST(WalTest, ScanStopsAtGarbageFrame) {
  WalFixture fx;
  fx.wal.Append(1, Bytes("good"));
  fx.wal.Commit([] {});
  fx.sim.Run();
  // Garbage straight onto the disk behind the WAL's back — a frame whose
  // magic byte is wrong. The scan must stop there, not wander.
  std::vector<uint8_t> garbage = Bytes("garbage-not-a-frame");
  garbage.insert(garbage.begin(), 0x00);  // Anything but Wal::kMagic.
  fx.disk.Append(fx.file, garbage);
  fx.disk.Sync(fx.file, [] {});
  fx.sim.Run();

  WalScanStats stats;
  auto seen = fx.ScanAll(&stats);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].payload, Bytes("good"));
  EXPECT_GT(stats.torn_bytes, 0u);
}

TEST(WalTest, ScanRejectsCorruptPayload) {
  // A record whose bytes were silently flipped after the CRC was computed
  // must fail verification. Write a valid frame, then corrupt one durable
  // payload byte by rebuilding the file contents through Replace.
  WalFixture fx;
  fx.wal.Append(1, Bytes("payload"));
  fx.wal.Commit([] {});
  fx.sim.Run();

  std::vector<uint8_t> image = fx.disk.DurableImage(fx.file);
  ASSERT_GT(image.size(), Wal::kHeaderSize);
  image.back() ^= 0xFF;  // Flip the last payload byte.
  fx.disk.Replace(fx.file, image, [] {});
  fx.sim.Run();

  WalScanStats stats;
  auto seen = fx.ScanAll(&stats);
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(stats.torn_bytes, image.size());
}

TEST(WalTest, TornTailIsTrimmedAndLogStaysAppendable) {
  // Tear mid-record, recover, then keep logging: the trimmed log must
  // accept and retain new records.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WalFixture fx(TearModel(seed));
    fx.wal.Append(1, Bytes("committed-record"));
    bool committed = false;
    fx.wal.Commit([&] { committed = true; });
    fx.sim.Run();
    ASSERT_TRUE(committed);

    fx.wal.Append(2, std::vector<uint8_t>(64, 0x22));  // Unsynced.
    fx.wal.OnCrash();
    fx.disk.Crash();

    WalScanStats stats;
    auto seen = fx.ScanAll(&stats);
    ASSERT_GE(seen.size(), 1u) << "seed " << seed;
    EXPECT_EQ(seen[0].payload, Bytes("committed-record"));
    fx.wal.TrimTorn(stats);

    fx.wal.Append(3, Bytes("post-recovery"));
    fx.wal.Commit([] {});
    fx.sim.Run();
    auto after = fx.ScanAll();
    ASSERT_EQ(after.size(), seen.size() + 1) << "seed " << seed;
    EXPECT_EQ(after.back().type, 3u);
    EXPECT_EQ(after.back().payload, Bytes("post-recovery"));
  }
}

TEST(WalTest, GroupCommitBatchesConcurrentWaiters) {
  WalFixture fx;
  obs::Counter* syncs = fx.sim.metrics().counter("disk.syncs");

  // First commit takes the barrier; the rest arrive while it is in
  // flight and must share the *next* one — two syncs for six commits.
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    fx.wal.Append(1, Bytes("r" + std::to_string(i)));
    fx.wal.Commit([&] { ++fired; });
  }
  fx.sim.Run();
  EXPECT_EQ(fired, 6);
  EXPECT_EQ(syncs->value(), 2u);
  EXPECT_EQ(fx.wal.durable_end_lsn(), fx.wal.end_lsn());
}

TEST(WalTest, CommitWaitersDieWithTheNode) {
  WalFixture fx;
  fx.wal.Append(1, Bytes("unsynced"));
  bool fired = false;
  fx.wal.Commit([&] { fired = true; });
  fx.wal.OnCrash();
  fx.disk.Crash();
  fx.sim.Run();
  EXPECT_FALSE(fired);  // The ack that never was.
}

TEST(WalTest, LazyFlushMakesCommitlessRecordsDurable) {
  WalOptions options;
  options.flush_interval = 10.0;
  WalFixture fx(DropModel(), options);
  fx.wal.Append(1, Bytes("bookkeeping"));
  EXPECT_EQ(fx.wal.durable_end_lsn(), fx.wal.base_lsn());
  fx.sim.RunUntil(50);
  EXPECT_EQ(fx.wal.durable_end_lsn(), fx.wal.end_lsn());
}

// --- DurableStore ---------------------------------------------------------

DurabilityOptions StoreOptions(DiskCrashModel crash = DropModel()) {
  DurabilityOptions o;
  o.enabled = true;
  o.crash = crash;
  return o;
}

RecoveredState BirthState(uint32_t num_objects = 1,
                          std::vector<uint8_t> value = Bytes("init")) {
  RecoveredState s;
  s.epoch_number = 0;
  s.epoch_list = NodeSet::Universe(5);
  for (uint32_t i = 0; i < num_objects; ++i) {
    RecoveredState::ObjectState os;
    os.object = storage::VersionedObject(value);
    s.objects.emplace(i, std::move(os));
  }
  return s;
}

TEST(DurableStoreTest, EmptyLogRecoversBirthState) {
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());
  RecoveredState state = store.Recover(BirthState());
  EXPECT_EQ(state.epoch_number, 0u);
  EXPECT_EQ(state.objects.at(0).object.version(), 0u);
  EXPECT_EQ(state.objects.at(0).object.data(), Bytes("init"));
  EXPECT_EQ(store.last_recovery().replayed_records, 0u);
  EXPECT_FALSE(store.last_recovery().from_checkpoint);
}

TEST(DurableStoreTest, EffectRecordsReplayInOrder) {
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());

  store.LogUpdate(0, 1, storage::Update::Total(Bytes("v1")));
  store.LogUpdate(0, 2, storage::Update::Partial(1, Bytes("X")));
  store.LogMarkStale(0, 5);
  store.LogEpochInstall(3, NodeSet::FromVector({0, 1, 2}));
  store.LogPropAdd(0, NodeSet::FromVector({3, 4}));
  store.LogPropDone(0, 3);
  bool committed = false;
  store.Commit([&] { committed = true; });
  sim.Run();
  ASSERT_TRUE(committed);
  store.Crash();

  RecoveredState state = store.Recover(BirthState());
  EXPECT_EQ(state.objects.at(0).object.version(), 2u);
  EXPECT_EQ(state.objects.at(0).object.data(), Bytes("vX"));
  EXPECT_TRUE(state.objects.at(0).stale);
  EXPECT_EQ(state.objects.at(0).desired_version, 5u);
  EXPECT_EQ(state.epoch_number, 3u);
  EXPECT_EQ(state.epoch_list, NodeSet::FromVector({0, 1, 2}));
  EXPECT_EQ(state.pending_propagation.at(0), NodeSet::FromVector({4}));
  EXPECT_EQ(store.last_recovery().replayed_records, 6u);
}

TEST(DurableStoreTest, ClearStaleAndSnapshotReplay) {
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());
  store.LogMarkStale(0, 4);
  store.LogSnapshot(0, 4, Bytes("caught-up"));
  store.LogClearStale(0);
  store.Commit([] {});
  sim.Run();
  store.Crash();

  RecoveredState state = store.Recover(BirthState());
  EXPECT_FALSE(state.objects.at(0).stale);
  EXPECT_EQ(state.objects.at(0).desired_version, 0u);
  EXPECT_EQ(state.objects.at(0).object.version(), 4u);
  EXPECT_EQ(state.objects.at(0).object.data(), Bytes("caught-up"));
}

TEST(DurableStoreTest, ResolveErasesStagedButDecideDoesNot) {
  // The record-type distinction that keeps a crashed coordinator's
  // transaction recoverable: kResolve means "effects applied, staged
  // entry dead"; kDecide means "outcome known, staged entry still owed
  // its effects".
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());

  storage::LockOwner resolved{1, 10};
  storage::LockOwner decided{1, 11};
  store.LogStage(resolved, NodeSet::FromVector({0, 1}), Bytes("action-a"));
  store.LogStage(decided, NodeSet::FromVector({0, 1}), Bytes("action-b"));
  store.LogResolve(resolved, 1);
  store.LogDecide(decided, 1);
  store.Commit([] {});
  sim.Run();
  store.Crash();

  RecoveredState state = store.Recover(BirthState());
  EXPECT_EQ(state.staged.count({1, 10}), 0u);
  ASSERT_EQ(state.staged.count({1, 11}), 1u);
  EXPECT_EQ(state.staged.at({1, 11}).action, Bytes("action-b"));
  EXPECT_EQ(state.staged.at({1, 11}).participants, NodeSet::FromVector({0, 1}));
  EXPECT_EQ(state.outcomes.at({1, 10}), 1u);
  EXPECT_EQ(state.outcomes.at({1, 11}), 1u);
}

TEST(DurableStoreTest, UnsyncedRecordsDieButSyncedPrefixSurvives) {
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());

  store.LogUpdate(0, 1, storage::Update::Total(Bytes("durable")));
  store.Commit([] {});
  sim.Run();
  store.LogUpdate(0, 2, storage::Update::Total(Bytes("volatile")));
  store.Crash();  // Version-2 record never reached a barrier.

  RecoveredState state = store.Recover(BirthState());
  EXPECT_EQ(state.objects.at(0).object.version(), 1u);
  EXPECT_EQ(state.objects.at(0).object.data(), Bytes("durable"));
}

TEST(DurableStoreTest, EpochReplayNeverRegresses) {
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());
  store.LogEpochInstall(5, NodeSet::FromVector({0, 1, 2}));
  store.LogEpochInstall(3, NodeSet::FromVector({3, 4}));  // Stale duplicate.
  store.Commit([] {});
  sim.Run();
  store.Crash();

  RecoveredState state = store.Recover(BirthState());
  EXPECT_EQ(state.epoch_number, 5u);
  EXPECT_EQ(state.epoch_list, NodeSet::FromVector({0, 1, 2}));
}

TEST(DurableStoreTest, CheckpointBlobRoundTrips) {
  RecoveredState state = BirthState(2, Bytes("obj"));
  state.epoch_number = 7;
  state.epoch_list = NodeSet::FromVector({0, 2, 4});
  state.objects.at(1).stale = true;
  state.objects.at(1).desired_version = 9;
  RecoveredState::StagedEntry e;
  e.owner = {2, 42};
  e.participants = NodeSet::FromVector({0, 1, 2});
  e.action = Bytes("staged-blob");
  state.staged.emplace(RecoveredState::TxKey{2, 42}, e);
  state.outcomes[{3, 17}] = 2;
  state.pending_propagation[0] = NodeSet::FromVector({1, 3});
  state.next_operation_id = 512;

  std::vector<uint8_t> blob = DurableStore::EncodeCheckpoint(state, 4096);
  RecoveredState decoded;
  uint64_t covered = 0;
  ASSERT_TRUE(DurableStore::DecodeCheckpoint(blob, &decoded, &covered));
  EXPECT_EQ(covered, 4096u);
  EXPECT_EQ(decoded.epoch_number, 7u);
  EXPECT_EQ(decoded.epoch_list, NodeSet::FromVector({0, 2, 4}));
  EXPECT_EQ(decoded.objects.at(0).object.data(), Bytes("obj"));
  EXPECT_TRUE(decoded.objects.at(1).stale);
  EXPECT_EQ(decoded.objects.at(1).desired_version, 9u);
  EXPECT_EQ(decoded.staged.at({2, 42}).action, Bytes("staged-blob"));
  EXPECT_EQ(decoded.outcomes.at({3, 17}), 2u);
  EXPECT_EQ(decoded.pending_propagation.at(0), NodeSet::FromVector({1, 3}));
  EXPECT_EQ(decoded.next_operation_id, 512u);

  // One flipped byte anywhere must fail the whole blob.
  blob[blob.size() / 2] ^= 0x01;
  EXPECT_FALSE(DurableStore::DecodeCheckpoint(blob, &decoded, &covered));
}

TEST(DurableStoreTest, CheckpointTriggersTruncationAndRecovery) {
  sim::Simulator sim;
  DurabilityOptions options = StoreOptions();
  options.checkpoint_threshold_bytes = 256;  // Trigger quickly.
  DurableStore store(&sim, options);

  // Live state the checkpoint will capture.
  RecoveredState live = BirthState();
  store.set_snapshot_source([&live] { return live; });

  for (storage::Version v = 1; v <= 20; ++v) {
    store.LogUpdate(0, v, storage::Update::Total(
                              std::vector<uint8_t>(32, uint8_t(v))));
    live.objects.at(0).object.Apply(
        storage::Update::Total(std::vector<uint8_t>(32, uint8_t(v))));
    store.Commit([] {});
    sim.Run();
  }
  EXPECT_GT(sim.metrics().counter("store.checkpoints")->value(), 0u);
  EXPECT_GT(store.wal().base_lsn(), 0u);  // Prefix truncated.

  store.Crash();
  RecoveredState state = store.Recover(BirthState());
  EXPECT_TRUE(store.last_recovery().from_checkpoint);
  EXPECT_EQ(state.objects.at(0).object.version(), 20u);
  EXPECT_EQ(state.objects.at(0).object.data(),
            std::vector<uint8_t>(32, uint8_t(20)));
}

TEST(DurableStoreTest, OperationIdWatermarkPreventsReuse) {
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());
  const uint64_t stride = DurabilityOptions{}.opid_stride;

  // Mint a few ids; the watermark record rides a commit.
  store.ReserveOperationIds(2);
  store.ReserveOperationIds(3);
  store.Commit([] {});
  sim.Run();
  store.Crash();

  RecoveredState state = store.Recover(BirthState());
  // The durable watermark sits a stride past the highest reservation, so
  // any id actually handed out is strictly below it.
  EXPECT_EQ(state.next_operation_id, 2 + stride);
}

TEST(DurableStoreTest, WatermarkLostWithTailStillCoveredByStride) {
  // Even if the watermark record is unsynced at the crash, the *previous*
  // durable watermark plus the node-side stride skip keeps recovered ids
  // ahead of anything minted before the crash (fewer than a stride's
  // worth of ids fit between two watermark flushes).
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());
  store.ReserveOperationIds(2);
  store.Commit([] {});
  sim.Run();
  uint64_t durable_watermark = 2 + DurabilityOptions{}.opid_stride;

  // These reservations' watermark records never sync.
  for (uint64_t id = 3; id < 3 + 100; ++id) store.ReserveOperationIds(id);
  store.Crash();

  RecoveredState state = store.Recover(BirthState());
  EXPECT_EQ(state.next_operation_id, durable_watermark);
  // All ids handed out (< 103) stay below watermark + 0: a recovering
  // node that skips a further stride past this can never collide.
  EXPECT_LT(103u, durable_watermark + DurabilityOptions{}.opid_stride);
}

TEST(DurableStoreTest, CrashDuringRecoveryWindowIsRepeatable) {
  // Recover, log more, crash again, recover again — LSNs and replay must
  // stay coherent across generations.
  sim::Simulator sim;
  DurableStore store(&sim, StoreOptions());

  store.LogUpdate(0, 1, storage::Update::Total(Bytes("gen1")));
  store.Commit([] {});
  sim.Run();
  store.Crash();
  RecoveredState s1 = store.Recover(BirthState());
  ASSERT_EQ(s1.objects.at(0).object.version(), 1u);

  store.LogUpdate(0, 2, storage::Update::Total(Bytes("gen2")));
  store.Commit([] {});
  sim.Run();
  store.Crash();
  RecoveredState s2 = store.Recover(BirthState());
  EXPECT_EQ(s2.objects.at(0).object.version(), 2u);
  EXPECT_EQ(s2.objects.at(0).object.data(), Bytes("gen2"));
  EXPECT_EQ(store.last_recovery().replayed_records, 2u);
}

}  // namespace
}  // namespace dcp::store
