#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/rpc.h"
#include "sim/simulator.h"

namespace dcp::net {
namespace {

/// Echo service: replies with the request payload; refuses type "deny".
struct EchoPayload : Payload {
  explicit EchoPayload(int v) : value(v) {}
  int value;
};

class EchoService : public RpcService {
 public:
  Result<PayloadPtr> HandleRequest(NodeId from, const std::string& type,
                                   const PayloadPtr& request) override {
    last_from = from;
    ++handled;
    if (type == "deny") return Status::Conflict("denied");
    return request;
  }
  NodeId last_from = kInvalidNode;
  int handled = 0;
};

struct Harness {
  sim::Simulator sim;
  Network network{&sim, Rng(1), LatencyModel{1.0, 0.0}};
  RpcRuntime rpc0{&network, 0, /*timeout=*/50};
  RpcRuntime rpc1{&network, 1, /*timeout=*/50};
  RpcRuntime rpc2{&network, 2, /*timeout=*/50};
  EchoService svc0, svc1, svc2;

  Harness() {
    rpc0.set_service(&svc0);
    rpc1.set_service(&svc1);
    rpc2.set_service(&svc2);
  }
};

TEST(Network, DeliversBetweenUpNodes) {
  Harness h;
  bool got = false;
  h.rpc0.Call(1, "echo", MakePayload<EchoPayload>(42), [&](RpcResult r) {
    ASSERT_TRUE(r.ok()) << r.transport.ToString();
    EXPECT_EQ(As<EchoPayload>(r.response).value, 42);
    got = true;
  });
  h.sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(h.svc1.last_from, 0u);
  EXPECT_EQ(h.network.stats().total_delivered, 2u);  // Request + reply.
}

TEST(Network, SelfCallWorks) {
  Harness h;
  bool got = false;
  h.rpc0.Call(0, "echo", MakePayload<EchoPayload>(7), [&](RpcResult r) {
    EXPECT_TRUE(r.ok());
    got = true;
  });
  h.sim.Run();
  EXPECT_TRUE(got);
}

TEST(Network, CallToDownNodeFails) {
  Harness h;
  h.network.SetNodeUp(1, false);
  bool got = false;
  h.rpc0.Call(1, "echo", MakePayload<EchoPayload>(1), [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    got = true;
  });
  h.sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(h.svc1.handled, 0);
  EXPECT_EQ(h.network.stats().total_failed, 1u);
}

TEST(Network, AppErrorIsNotCallFailed) {
  Harness h;
  bool got = false;
  h.rpc0.Call(1, "deny", MakePayload<EchoPayload>(1), [&](RpcResult r) {
    EXPECT_FALSE(r.call_failed());
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.app.IsConflict());
    got = true;
  });
  h.sim.Run();
  EXPECT_TRUE(got);
}

TEST(Network, PartitionBlocksCrossGroupTraffic) {
  Harness h;
  h.network.SetPartitions({NodeSet({0, 1}), NodeSet({2})});
  EXPECT_TRUE(h.network.Reachable(0, 1));
  EXPECT_FALSE(h.network.Reachable(0, 2));

  bool in_group = false, cross_group = false;
  h.rpc0.Call(1, "echo", MakePayload<EchoPayload>(1), [&](RpcResult r) {
    EXPECT_TRUE(r.ok());
    in_group = true;
  });
  h.rpc0.Call(2, "echo", MakePayload<EchoPayload>(1), [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    cross_group = true;
  });
  h.sim.Run();
  EXPECT_TRUE(in_group);
  EXPECT_TRUE(cross_group);

  h.network.HealPartitions();
  EXPECT_TRUE(h.network.Reachable(0, 2));
}

TEST(Network, CrashMidFlightDropsMessageAndNotifiesSender) {
  Harness h;
  bool got = false;
  h.rpc0.Call(1, "echo", MakePayload<EchoPayload>(5), [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    got = true;
  });
  // Crash node 1 before the message (latency 1.0) arrives.
  h.sim.Schedule(0.5, [&] { h.network.SetNodeUp(1, false); });
  h.sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(h.svc1.handled, 0);
}

TEST(Network, ResponseLossTriggersTimeout) {
  Harness h;
  bool got = false;
  h.rpc0.Call(1, "echo", MakePayload<EchoPayload>(5), [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    EXPECT_EQ(r.transport.code(), StatusCode::kTimedOut);
    got = true;
  });
  // Crash node 0... no — crash the *link back*: partition after delivery.
  h.sim.Schedule(1.5, [&] {
    h.network.SetPartitions({NodeSet({0}), NodeSet({1, 2})});
  });
  h.sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(h.svc1.handled, 1);  // Request arrived; reply was lost.
}

TEST(Network, AbortAllSuppressesCallbacks) {
  Harness h;
  bool fired = false;
  h.rpc0.Call(1, "echo", MakePayload<EchoPayload>(5),
              [&](RpcResult) { fired = true; });
  h.rpc0.AbortAll();
  h.sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Network, MulticastGatherCollectsMixedOutcomes) {
  Harness h;
  h.network.SetNodeUp(2, false);
  bool done = false;
  MulticastGather(&h.rpc0, NodeSet({0, 1, 2}), "echo",
                  MakePayload<EchoPayload>(3), [&](GatherResult g) {
                    EXPECT_EQ(g.replies.size(), 3u);
                    EXPECT_EQ(g.Responded(), NodeSet({0, 1}));
                    EXPECT_EQ(g.Succeeded(), NodeSet({0, 1}));
                    EXPECT_TRUE(g.replies.at(2).call_failed());
                    done = true;
                  });
  h.sim.Run();
  EXPECT_TRUE(done);
}

TEST(Network, MulticastGatherEmptyTargetsCompletes) {
  Harness h;
  bool done = false;
  MulticastGather(&h.rpc0, NodeSet{}, "echo", MakePayload<EchoPayload>(0),
                  [&](GatherResult g) {
                    EXPECT_TRUE(g.replies.empty());
                    done = true;
                  });
  h.sim.Run();
  EXPECT_TRUE(done);
}

TEST(Network, PerTypeStatsAccumulate) {
  Harness h;
  bool a = false, b = false;
  h.rpc0.Call(1, "alpha", MakePayload<EchoPayload>(0),
              [&](RpcResult) { a = true; });
  h.rpc1.Call(2, "beta", MakePayload<EchoPayload>(0),
              [&](RpcResult) { b = true; });
  h.sim.Run();
  EXPECT_TRUE(a && b);
  const auto& stats = h.network.stats();
  EXPECT_EQ(stats.by_type.at("alpha").sent, 1u);
  EXPECT_EQ(stats.by_type.at("alpha.reply").delivered, 1u);
  EXPECT_EQ(stats.by_type.at("beta").sent, 1u);
  // Node 1 received the "alpha" request and the "beta.reply".
  EXPECT_EQ(stats.delivered_to.at(1), 2u);
}

}  // namespace
}  // namespace dcp::net
