#include <gtest/gtest.h>

#include <vector>

#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

std::vector<uint8_t> Bytes(const char* s) {
  return std::vector<uint8_t>(s, s + std::string(s).size());
}

ClusterOptions Options(uint32_t n, CoterieKind kind = CoterieKind::kGrid) {
  ClusterOptions opts;
  opts.num_nodes = n;
  opts.coterie = kind;
  opts.seed = 7;
  opts.initial_value = Bytes("0000000000");
  return opts;
}

TEST(ProtocolFailure, WritesSurviveSingleFailureViaHeavyProcedure) {
  Cluster cluster(Options(9));
  cluster.Crash(4);
  // No epoch change yet; writes whose quorum would include node 4 fall
  // back to HeavyProcedure and still succeed (8 of 9 up).
  for (int i = 0; i < 9; ++i) {
    NodeId coord = static_cast<NodeId>(i == 4 ? 0 : i);
    auto w = cluster.WriteSyncRetry(coord, Update::Partial(0, {uint8_t(i)}));
    ASSERT_TRUE(w.ok()) << "coord " << int(coord) << ": "
                        << w.status().ToString();
  }
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolFailure, EpochChangeExcludesCrashedNode) {
  Cluster cluster(Options(9));
  cluster.Crash(4);
  Status s = cluster.CheckEpochSync(0);
  ASSERT_TRUE(s.ok()) << s.ToString();

  NodeSet expected = NodeSet::Universe(9);
  expected.Erase(4);
  for (NodeId i = 0; i < 9; ++i) {
    if (i == 4) continue;
    EXPECT_EQ(cluster.node(i).store().epoch_number(), 1u);
    EXPECT_EQ(cluster.node(i).store().epoch_list(), expected);
  }
  // The crashed node still carries the old epoch.
  EXPECT_EQ(cluster.node(4).store().epoch_number(), 0u);
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
}

TEST(ProtocolFailure, EpochChangeReadmitsRecoveredNode) {
  Cluster cluster(Options(9));
  cluster.Crash(4);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  // Write while node 4 is out, so it misses data.
  auto w = cluster.WriteSyncRetry(1, Update::Partial(0, Bytes("new")));
  ASSERT_TRUE(w.ok());

  cluster.Recover(4);
  Status s = cluster.CheckEpochSync(2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(cluster.node(4).store().epoch_number(), 2u);
  EXPECT_EQ(cluster.node(4).store().epoch_list(), NodeSet::Universe(9));
  // Node 4 re-enters marked stale, then catches up by propagation.
  cluster.RunFor(2000);
  EXPECT_FALSE(cluster.node(4).store().stale());
  EXPECT_EQ(cluster.node(4).store().version(), w->version);
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
}

TEST(ProtocolFailure, GradualFailuresKeepDataAvailableWithThreeNodes) {
  // The headline capability: the static grid dies once any read quorum is
  // down, but the dynamic protocol shrinks the epoch and survives down to
  // 3 nodes (the minimal grid, Figure 2).
  Cluster cluster(Options(9));
  std::vector<NodeId> crash_order = {8, 7, 6, 5, 4, 3};
  for (NodeId victim : crash_order) {
    // Let propagation finish before the next failure (the site model's
    // regime). Crashing the only current replica mid-propagation is the
    // vulnerability window Section 4.1 discusses — tested separately.
    cluster.RunFor(500);
    cluster.Crash(victim);
    ASSERT_TRUE(cluster.CheckEpochSync(0).ok())
        << "epoch change failed after crashing " << int(victim);
    auto w = cluster.WriteSyncRetry(0, Update::Partial(0, {uint8_t(victim)}));
    ASSERT_TRUE(w.ok()) << "write failed with "
                        << cluster.UpNodes().Size() << " nodes up: "
                        << w.status().ToString();
  }
  EXPECT_EQ(cluster.UpNodes().Size(), 3u);
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolFailure, StaticQuorumLossMakesObjectUnavailableUntilRepair) {
  Cluster cluster(Options(9));
  // Crash six nodes at once — no epoch change possible (the survivors
  // {0,1,2} are a grid row, not a write quorum of the 3x3 grid).
  for (NodeId v = 3; v < 9; ++v) cluster.Crash(v);
  Status s = cluster.CheckEpochSync(0);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  auto w = cluster.WriteSync(0, Update::Partial(0, {1}));
  EXPECT_FALSE(w.ok());

  // Repair one column's worth; {0,1,2,3,6} contains column {0,3,6} and a
  // representative of every column -> quorum of epoch 0 -> recoverable.
  cluster.Recover(3);
  cluster.Recover(6);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  auto w2 = cluster.WriteSyncRetry(0, Update::Partial(0, {2}));
  EXPECT_TRUE(w2.ok()) << w2.status().ToString();
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolFailure, PartitionAllowsAtMostOneSideToProceed) {
  Cluster cluster(Options(9));
  // Split 3x3 grid: {0,1,3,4,6,7} (two full columns) vs {2,5,8} (one).
  NodeSet major({0, 1, 3, 4, 6, 7});
  NodeSet minor({2, 5, 8});
  cluster.Partition({major, minor});

  // The majority side can reform an epoch (covers a column and... note:
  // {0,1,3,4,6,7} covers columns 0,1 fully but column 2 not at all — NOT
  // a quorum of the 3x3 grid! Neither side can write: both stay safe.
  Status s_major = cluster.CheckEpochSync(0);
  Status s_minor = cluster.CheckEpochSync(2);
  auto w_major = cluster.WriteSync(0, Update::Partial(0, {1}));
  auto w_minor = cluster.WriteSync(2, Update::Partial(0, {2}));
  // At most one side may succeed; with this split, neither does.
  EXPECT_FALSE(w_major.ok());
  EXPECT_FALSE(w_minor.ok());
  EXPECT_FALSE(s_major.ok());
  EXPECT_FALSE(s_minor.ok());

  cluster.Heal();
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  auto w = cluster.WriteSyncRetry(0, Update::Partial(0, {3}));
  EXPECT_TRUE(w.ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolFailure, PartitionWithQuorumSideProceeds) {
  Cluster cluster(Options(9));
  // {0,1,2,3,6} = full column {0,3,6} + reps of columns 1,2 -> quorum.
  NodeSet quorum_side({0, 1, 2, 3, 6});
  NodeSet rest({4, 5, 7, 8});
  cluster.Partition({quorum_side, rest});

  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  auto w = cluster.WriteSyncRetry(0, Update::Partial(0, {9}));
  EXPECT_TRUE(w.ok()) << w.status().ToString();

  // The minority side can do nothing.
  auto w2 = cluster.WriteSync(4, Update::Partial(0, {8}));
  EXPECT_FALSE(w2.ok());
  Status s2 = cluster.CheckEpochSync(4);
  EXPECT_FALSE(s2.ok());

  cluster.Heal();
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  cluster.RunFor(2000);
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolFailure, CoordinatorCrashMidOperationIsSafe) {
  Cluster cluster(Options(9));
  ASSERT_TRUE(cluster.WriteSync(0, Update::Partial(0, {1})).ok());

  // Start a write and crash the coordinator before it completes.
  bool fired = false;
  cluster.Write(1, Update::Partial(0, {2}),
                [&](Result<WriteOutcome>) { fired = true; });
  cluster.RunFor(1.2);  // Lock requests are in flight now.
  cluster.Crash(1);
  cluster.RunFor(3000);  // Leases expire; participants resolve.
  EXPECT_FALSE(fired);   // The dead coordinator never reports.

  // The object remains writable by others.
  auto w = cluster.WriteSyncRetry(2, Update::Partial(0, {3}), 20);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  cluster.RunFor(2000);
  EXPECT_TRUE(cluster.Quiescent());
  EXPECT_TRUE(cluster.CheckHistory().ok()) << cluster.CheckHistory().ToString();
}

TEST(ProtocolFailure, DynamicMajorityShrinkToTwoNodes) {
  Cluster cluster(Options(9, CoterieKind::kMajority));
  std::vector<NodeId> crash_order = {8, 7, 6, 5, 4, 3, 2};
  for (NodeId victim : crash_order) {
    cluster.RunFor(500);  // Drain propagation between failures.
    cluster.Crash(victim);
    ASSERT_TRUE(cluster.CheckEpochSync(0).ok())
        << "epoch change failed after crashing " << int(victim);
    auto w = cluster.WriteSyncRetry(0, Update::Partial(0, {uint8_t(victim)}));
    ASSERT_TRUE(w.ok()) << w.status().ToString();
  }
  EXPECT_EQ(cluster.UpNodes().Size(), 2u);
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolFailure, RecoveredNodeWithOldEpochCannotServeAlone) {
  Cluster cluster(Options(9));
  cluster.Crash(8);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  ASSERT_TRUE(cluster.WriteSyncRetry(0, Update::Partial(0, {7})).ok());

  // Partition the recovered node by itself: it holds epoch 0's full list
  // but cannot assemble a quorum alone, so it must fail.
  cluster.Recover(8);
  NodeSet alone({8});
  NodeSet rest({0, 1, 2, 3, 4, 5, 6, 7});
  cluster.Partition({alone, rest});
  auto r = cluster.ReadSync(8);
  EXPECT_FALSE(r.ok());
  auto w = cluster.WriteSync(8, Update::Partial(0, {1}));
  EXPECT_FALSE(w.ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

}  // namespace
}  // namespace dcp::protocol
