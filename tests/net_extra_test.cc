// Additional network-layer coverage: latency model bounds, three-way
// partitions, stats lifecycle, sender-crash in-flight semantics, and
// RPC timeout configuration.

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace dcp::net {
namespace {

struct Echo : Payload {
  explicit Echo(int v) : value(v) {}
  int value;
};

class EchoService : public RpcService {
 public:
  Result<PayloadPtr> HandleRequest(NodeId, const std::string&,
                                   const PayloadPtr& request) override {
    ++handled;
    return request;
  }
  int handled = 0;
};

TEST(NetworkExtra, LatencyStaysWithinModelBounds) {
  sim::Simulator sim;
  Network network(&sim, Rng(9), LatencyModel{2.0, 1.0});
  EchoService svc;
  RpcRuntime a(&network, 0), b(&network, 1);
  a.set_service(&svc);
  b.set_service(&svc);

  for (int i = 0; i < 50; ++i) {
    double sent_at = sim.Now();
    bool got = false;
    a.Call(1, "echo", MakePayload<Echo>(i), [&, sent_at](RpcResult r) {
      ASSERT_TRUE(r.ok());
      double rtt = sim.Now() - sent_at;
      EXPECT_GE(rtt, 4.0);  // Two hops, >= 2 x base.
      EXPECT_LE(rtt, 6.0);  // <= 2 x (base + jitter).
      got = true;
    });
    sim.Run();
    EXPECT_TRUE(got);
  }
}

TEST(NetworkExtra, ThreeWayPartitionIsolatesAllGroups) {
  sim::Simulator sim;
  Network network(&sim, Rng(1));
  EchoService svc;
  RpcRuntime r0(&network, 0), r1(&network, 1), r2(&network, 2);
  r0.set_service(&svc);
  r1.set_service(&svc);
  r2.set_service(&svc);

  network.SetPartitions({NodeSet({0}), NodeSet({1}), NodeSet({2})});
  EXPECT_FALSE(network.Reachable(0, 1));
  EXPECT_FALSE(network.Reachable(1, 2));
  EXPECT_FALSE(network.Reachable(0, 2));
  EXPECT_TRUE(network.Reachable(0, 0));  // Self stays reachable.

  // Re-partitioning replaces the old grouping outright.
  network.SetPartitions({NodeSet({0, 1, 2})});
  EXPECT_TRUE(network.Reachable(0, 2));
}

TEST(NetworkExtra, NodesOutsideAnyGroupFormTheirOwn) {
  sim::Simulator sim;
  Network network(&sim, Rng(1));
  EchoService svc;
  RpcRuntime r0(&network, 0), r1(&network, 1), r2(&network, 2);
  r0.set_service(&svc);
  r1.set_service(&svc);
  r2.set_service(&svc);
  // Only node 2 is named; 0 and 1 stay in the default group together.
  network.SetPartitions({NodeSet({2})});
  EXPECT_TRUE(network.Reachable(0, 1));
  EXPECT_FALSE(network.Reachable(0, 2));
}

TEST(NetworkExtra, StatsResetClearsEverything) {
  sim::Simulator sim;
  Network network(&sim, Rng(1));
  EchoService svc;
  RpcRuntime a(&network, 0), b(&network, 1);
  a.set_service(&svc);
  b.set_service(&svc);
  bool got = false;
  a.Call(1, "echo", MakePayload<Echo>(0), [&](RpcResult) { got = true; });
  sim.Run();
  ASSERT_TRUE(got);
  EXPECT_GT(network.stats().total_sent, 0u);
  network.ResetStats();
  EXPECT_EQ(network.stats().total_sent, 0u);
  EXPECT_TRUE(network.stats().by_type.empty());
  EXPECT_TRUE(network.stats().delivered_to.empty());
}

TEST(NetworkExtra, SenderCrashDoesNotRecallInFlightMessages) {
  sim::Simulator sim;
  Network network(&sim, Rng(1), LatencyModel{1.0, 0.0});
  EchoService svc_a, svc_b;
  RpcRuntime a(&network, 0), b(&network, 1);
  a.set_service(&svc_a);
  b.set_service(&svc_b);

  a.Call(1, "echo", MakePayload<Echo>(7), [](RpcResult) {});
  // Crash the sender while the request is on the wire: fail-stop means
  // it cannot RECALL the packet; node 1 still processes it.
  sim.Schedule(0.5, [&] { network.SetNodeUp(0, false); });
  sim.Run();
  EXPECT_EQ(svc_b.handled, 1);
}

TEST(NetworkExtra, CrashedNodeCannotSend) {
  sim::Simulator sim;
  Network network(&sim, Rng(1));
  EchoService svc;
  RpcRuntime a(&network, 0), b(&network, 1);
  a.set_service(&svc);
  b.set_service(&svc);
  network.SetNodeUp(0, false);
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.type = "echo";
  msg.payload = MakePayload<Echo>(1);
  network.Send(std::move(msg));
  sim.Run();
  EXPECT_EQ(svc.handled, 0);
  EXPECT_EQ(network.stats().total_sent, 0u);
}

TEST(NetworkExtra, ShortRpcTimeoutFiresBeforeSlowReply) {
  sim::Simulator sim;
  Network network(&sim, Rng(1), LatencyModel{10.0, 0.0});  // Slow net.
  EchoService svc;
  RpcRuntime fast(&network, 0, /*timeout=*/5.0);  // Shorter than one hop.
  RpcRuntime peer(&network, 1);
  fast.set_service(&svc);
  peer.set_service(&svc);

  bool got = false;
  fast.Call(1, "echo", MakePayload<Echo>(1), [&](RpcResult r) {
    EXPECT_TRUE(r.call_failed());
    EXPECT_EQ(r.transport.code(), StatusCode::kTimedOut);
    got = true;
  });
  sim.Run();
  EXPECT_TRUE(got);
  // The reply still arrived later and was dropped as stale (no crash).
  EXPECT_EQ(svc.handled, 1);
}

}  // namespace
}  // namespace dcp::net
