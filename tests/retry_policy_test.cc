// RetryPolicy coverage: by default the *SyncRetry wrappers retry only
// lock conflicts (the historical behavior); with retry_unavailable set
// they also ride out transient quorum loss — the regression here was
// treating kUnavailable as terminal with no way to opt out, so a client
// gave up even when the missing nodes were seconds from recovery.

#include <gtest/gtest.h>

#include <vector>

#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

ClusterOptions BaseOptions(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = seed;
  opts.initial_value = {0, 0, 0, 0};
  return opts;
}

/// Crashes nodes 3..8 (leaving only row {0,1,2} of the 3x3 grid — no
/// write quorum) and schedules their recovery at `recover_at`.
void CrashMajorityUntil(Cluster* cluster, sim::Time recover_at) {
  for (NodeId v = 3; v < 9; ++v) cluster->Crash(v);
  cluster->simulator().Schedule(recover_at, [cluster] {
    for (NodeId v = 3; v < 9; ++v) cluster->Recover(v);
  });
}

TEST(RetryPolicy, UnavailableIsTerminalByDefault) {
  Cluster cluster(BaseOptions(11));
  CrashMajorityUntil(&cluster, 150.0);

  // Even with many attempts allowed, the default policy returns the
  // kUnavailable verbatim from the first attempt — well before t=150.
  auto w = cluster.WriteSyncRetry(0, Update::Partial(0, {1}), 50);
  ASSERT_FALSE(w.ok());
  EXPECT_TRUE(w.status().IsUnavailable()) << w.status().ToString();
  EXPECT_LT(cluster.simulator().Now(), 150.0);
}

TEST(RetryPolicy, RetryUnavailableRidesOutRecovery) {
  ClusterOptions opts = BaseOptions(11);
  opts.retry_policy.retry_unavailable = true;
  Cluster cluster(opts);
  CrashMajorityUntil(&cluster, 150.0);

  auto w = cluster.WriteSyncRetry(0, Update::Partial(0, {1}), 50);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_GE(cluster.simulator().Now(), 150.0);
}

TEST(RetryPolicy, ReadRetryCoversBothStatuses) {
  // Read quorums take one representative per grid column, so killing the
  // whole column {0,3,6} makes reads unavailable (a plain row crash
  // would not — the survivors still cover every column).
  ClusterOptions opts = BaseOptions(23);
  opts.retry_policy.retry_unavailable = true;
  Cluster cluster(opts);
  for (NodeId v : {NodeId(0), NodeId(3), NodeId(6)}) cluster.Crash(v);
  cluster.simulator().Schedule(120.0, [&cluster] {
    for (NodeId v : {NodeId(0), NodeId(3), NodeId(6)}) cluster.Recover(v);
  });

  auto r = cluster.ReadSyncRetry(1, 50);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(cluster.simulator().Now(), 120.0);

  // And the default policy still surfaces unavailability immediately.
  Cluster strict(BaseOptions(23));
  for (NodeId v : {NodeId(0), NodeId(3), NodeId(6)}) strict.Crash(v);
  auto r2 = strict.ReadSyncRetry(1, 50);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsUnavailable()) << r2.status().ToString();
}

TEST(RetryPolicy, ConflictStillRetriedByDefault) {
  // ShouldRetry is the single decision point; check its table directly.
  RetryPolicy def;
  EXPECT_TRUE(def.ShouldRetry(Status::Conflict("c")));
  EXPECT_FALSE(def.ShouldRetry(Status::Unavailable("u")));
  def.retry_unavailable = true;
  EXPECT_TRUE(def.ShouldRetry(Status::Unavailable("u")));
  def.retry_conflict = false;
  EXPECT_FALSE(def.ShouldRetry(Status::Conflict("c")));
  EXPECT_FALSE(def.ShouldRetry(Status::Internal("i")));
}

}  // namespace
}  // namespace dcp::protocol
