// Unit coverage for the open-addressing FlatMap used on the RPC and
// network hot paths: basic operations, backward-shift erasure under
// collisions, growth, and a randomized differential test against
// std::unordered_map.

#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace dcp {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(1), nullptr);

  m.Insert(1, 10);
  m.Insert(2, 20);
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 10);
  EXPECT_EQ(m.At(2), 20);

  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ZeroKeyIsAValidKey) {
  FlatMap<std::string> m;
  m.Insert(0, "zero");
  ASSERT_NE(m.Find(0), nullptr);
  EXPECT_EQ(*m.Find(0), "zero");
  EXPECT_TRUE(m.Erase(0));
  EXPECT_EQ(m.Find(0), nullptr);
}

TEST(FlatMap, FindPointerAllowsInPlaceUpdate) {
  FlatMap<int> m;
  m.Insert(7, 1);
  *m.Find(7) += 41;
  EXPECT_EQ(m.At(7), 42);
}

TEST(FlatMap, InsertOverwritesExistingKey) {
  FlatMap<int> m;
  m.Insert(5, 1);
  m.Insert(5, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.At(5), 2);
}

TEST(FlatMap, GrowthPreservesAllEntries) {
  FlatMap<uint64_t> m;
  constexpr uint64_t kN = 10000;
  for (uint64_t k = 1; k <= kN; ++k) m.Insert(k, k * 3);
  EXPECT_EQ(m.size(), kN);
  for (uint64_t k = 1; k <= kN; ++k) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), k * 3);
  }
  EXPECT_EQ(m.Find(kN + 1), nullptr);
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce) {
  FlatMap<int> m;
  for (uint64_t k = 100; k < 200; ++k) m.Insert(k, 1);
  uint64_t visits = 0, key_sum = 0;
  m.ForEach([&](uint64_t key, int& value) {
    visits += value;
    key_sum += key;
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(key_sum, (100u + 199u) * 100u / 2u);
}

TEST(FlatMap, ClearEmptiesButStaysUsable) {
  FlatMap<int> m;
  for (uint64_t k = 0; k < 50; ++k) m.Insert(k, 1);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(3), nullptr);
  m.Insert(3, 9);
  EXPECT_EQ(m.At(3), 9);
}

TEST(FlatMap, EraseUnderCollisionsBackwardShifts) {
  // Dense sequential keys guarantee probe chains once the table is near
  // its load limit; erasing from chain heads exercises the backward
  // shift (a naive "mark empty" erase would break later lookups).
  FlatMap<uint64_t> m;
  for (uint64_t k = 0; k < 24; ++k) m.Insert(k, k);
  for (uint64_t k = 0; k < 24; k += 3) EXPECT_TRUE(m.Erase(k));
  for (uint64_t k = 0; k < 24; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(m.Find(k), nullptr) << k;
    } else {
      ASSERT_NE(m.Find(k), nullptr) << k;
      EXPECT_EQ(*m.Find(k), k);
    }
  }
}

TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap) {
  FlatMap<uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(20260805);
  for (int op = 0; op < 200000; ++op) {
    uint64_t key = rng.Next64() % 512;  // Small key space forces churn.
    switch (rng.Next64() % 3) {
      case 0: {
        uint64_t value = rng.Next64();
        m.Insert(key, value);
        ref[key] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(m.Erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        auto it = ref.find(key);
        uint64_t* found = m.Find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  m.ForEach([&](uint64_t key, uint64_t& value) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
  });
}

}  // namespace
}  // namespace dcp
