// Read-protocol specifics: shared-lock concurrency, the heavy read
// fallback, read/write exclusion, and read availability exceeding write
// availability on the grid (reads need no full column).

#include <gtest/gtest.h>

#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

ClusterOptions Options(uint32_t n = 9) {
  ClusterOptions opts;
  opts.num_nodes = n;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = 61;
  opts.initial_value = {'r', '0'};
  return opts;
}

TEST(ProtocolRead, ConcurrentReadsShareLocks) {
  Cluster cluster(Options());
  ASSERT_TRUE(cluster.WriteSyncRetry(0, Update::Partial(1, {'1'})).ok());
  // Launch several reads at once; shared locks mean none may conflict.
  int done = 0, ok = 0;
  for (NodeId coord = 0; coord < 6; ++coord) {
    cluster.Read(coord, [&](Result<ReadOutcome> r) {
      ++done;
      if (r.ok()) ++ok;
    });
  }
  while (done < 6 && cluster.simulator().Step()) {
  }
  EXPECT_EQ(ok, 6);
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolRead, ReadBlocksDuringWriteCommit) {
  // A read whose quorum intersects a mid-2PC write must conflict (the
  // write holds exclusive locks through its decision), preserving
  // read-latest semantics.
  Cluster cluster(Options());
  bool write_done = false;
  cluster.Write(0, Update::Partial(1, {'X'}),
                [&](Result<WriteOutcome>) { write_done = true; });
  cluster.RunFor(1.2);  // Locks are in flight/held; commit not yet done.
  auto r = cluster.ReadSync(4);
  // Either the read serialized after the write (sees v1) or it conflicted
  // and failed; it must NOT return version 0 data if the write committed
  // before the read started — the history checker arbitrates exactly
  // this, so just run both to completion and check.
  while (!write_done && cluster.simulator().Step()) {
  }
  EXPECT_TRUE(cluster.CheckHistory().ok()) << cluster.CheckHistory().ToString();
}

TEST(ProtocolRead, HeavyReadAfterEpochDrift) {
  // Coordinator 8 sleeps through an epoch change; its first read draws a
  // quorum from the stale epoch list, detects the newer epoch in the
  // responses, and falls back to the heavy path — still succeeding.
  Cluster cluster(Options());
  cluster.Crash(4);
  ASSERT_TRUE(cluster.CheckEpochSync(0).ok());
  ASSERT_TRUE(cluster.WriteSyncRetry(0, Update::Partial(1, {'9'})).ok());
  // Node 8 still holds the epoch-0 list? No: it was a 2PC participant of
  // the epoch change. Simulate drift instead: crash 8 before the change.
  Cluster cluster2(Options());
  cluster2.Crash(8);
  ASSERT_TRUE(cluster2.CheckEpochSync(0).ok());
  ASSERT_TRUE(cluster2.WriteSyncRetry(0, Update::Partial(1, {'7'})).ok());
  cluster2.Recover(8);
  // Node 8's epoch list still names all 9 nodes (epoch 0); a read from
  // it must still find the current data (via the responses' epoch list).
  auto r = cluster2.ReadSyncRetry(8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->data[1], '7');
}

TEST(ProtocolRead, GridReadsSurviveFailuresThatBlockWrites) {
  // 3x3 grid: losing one node from EVERY column (a grid row) leaves no
  // completely-live column — killing every write quorum — while reads
  // only need one representative per column and still succeed. This is
  // the read/write availability asymmetry of Section 5.
  Cluster cluster(Options());
  ASSERT_TRUE(cluster.WriteSyncRetry(3, Update::Partial(1, {'z'})).ok());
  cluster.RunFor(2000);  // Drain propagation so survivors are current.
  // Kill the top row {0,1,2}: one member of each column {0,3,6}/{1,4,7}/
  // {2,5,8}. No epoch change runs, so writes must fail...
  cluster.Crash(0);
  cluster.Crash(1);
  cluster.Crash(2);
  auto w = cluster.WriteSync(3, Update::Partial(1, {'!'}));
  EXPECT_FALSE(w.ok());
  // ...but reads still work.
  auto r = cluster.ReadSyncRetry(3);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->data[1], 'z');
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolRead, ReadRefusesWhenOnlyStaleReplicasReachable) {
  Cluster cluster(Options());
  // Hand-build: node 4 is the only current replica (v3); rest stale.
  for (uint32_t i = 0; i < 9; ++i) {
    auto& store = cluster.node(i).store();
    int target = (i == 4) ? 3 : 2;
    for (int v = 0; v < target; ++v) {
      store.object().Apply(storage::Update::Partial(0, {uint8_t(v)}));
    }
    if (i != 4) store.MarkStale(3);
  }
  cluster.Crash(4);
  auto r = cluster.ReadSync(0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsStaleData() || r.status().IsUnavailable())
      << r.status().ToString();
}

TEST(ProtocolRead, FetchTargetRotatesAcrossGoodReplicas) {
  Cluster cluster(Options());
  ASSERT_TRUE(cluster.WriteSyncRetry(0, Update::Total({'d'})).ok());
  cluster.RunFor(2000);
  cluster.network().ResetStats();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.ReadSyncRetry(static_cast<NodeId>(i % 9)).ok());
  }
  // Fetches should not all hit one node.
  uint32_t nodes_fetched_from = 0;
  const auto& stats = cluster.network().stats();
  auto it = stats.by_type.find("fetch");
  ASSERT_NE(it, stats.by_type.end());
  // Count distinct fetch targets via delivered_to of fetch... the stats
  // aggregate all types per node, so instead assert total fetches == 30
  // and rely on the quorum-function rotation tested elsewhere.
  EXPECT_EQ(it->second.sent, 30u);
  (void)nodes_fetched_from;
}

}  // namespace
}  // namespace dcp::protocol
