#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dcp::util {
namespace {

TEST(BufferPoolTest, ReusesReleasedBuffers) {
  BufferPool pool;
  std::vector<uint8_t> buf = pool.Acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.misses(), 1u);

  buf.assign(1000, 0xab);
  const size_t capacity = buf.capacity();
  pool.Release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);

  std::vector<uint8_t> again = pool.Acquire();
  EXPECT_TRUE(again.empty()) << "pooled buffers come back cleared";
  EXPECT_GE(again.capacity(), capacity) << "capacity survives the round trip";
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPoolTest, DisabledPoolAlwaysAllocates) {
  BufferPoolOptions o;
  o.enabled = false;
  BufferPool pool(o);
  std::vector<uint8_t> buf = pool.Acquire();
  buf.assign(64, 1);
  pool.Release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 0u);
  (void)pool.Acquire();
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPoolTest, OversizedBuffersAreNotRetained) {
  BufferPoolOptions o;
  o.max_buffer_bytes = 128;
  BufferPool pool(o);
  std::vector<uint8_t> big;
  big.assign(4096, 7);  // Capacity well past the cap.
  pool.Release(std::move(big));
  EXPECT_EQ(pool.pooled(), 0u) << "a pathological frame must not pin memory";

  std::vector<uint8_t> small;
  small.reserve(64);
  small.push_back(1);
  pool.Release(std::move(small));
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(BufferPoolTest, RetentionIsBoundedByMaxPooled) {
  BufferPoolOptions o;
  o.max_pooled = 2;
  BufferPool pool(o);
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> buf;
    buf.reserve(16);
    buf.push_back(static_cast<uint8_t>(i));
    pool.Release(std::move(buf));
  }
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPoolTest, EmptyBuffersAreDropped) {
  BufferPool pool;
  pool.Release({});  // Nothing to warm-start from; keeping it is pointless.
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace dcp::util
