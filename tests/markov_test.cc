#include "analysis/markov.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcp::analysis {
namespace {

TEST(MarkovChain, TwoStateClosedForm) {
  // Up/down machine: fail rate l, repair rate m. pi_up = m / (l + m).
  MarkovChain chain;
  size_t up = chain.AddState("up");
  size_t down = chain.AddState("down");
  chain.AddTransition(up, down, 1.0L);
  chain.AddTransition(down, up, 19.0L);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok()) << pi.status().ToString();
  EXPECT_NEAR(static_cast<double>((*pi)[up]), 0.95, 1e-15);
  EXPECT_NEAR(static_cast<double>((*pi)[down]), 0.05, 1e-15);
}

TEST(MarkovChain, BirthDeathMatchesClosedForm) {
  // M/M/1/K queue: pi_k = rho^k * (1 - rho) / (1 - rho^(K+1)).
  const int kCapacity = 6;
  const Real lambda = 2.0L, mu = 3.0L;
  const Real rho = lambda / mu;
  MarkovChain chain;
  for (int k = 0; k <= kCapacity; ++k) {
    chain.AddState("q" + std::to_string(k));
  }
  for (int k = 0; k < kCapacity; ++k) {
    chain.AddTransition(k, k + 1, lambda);
    chain.AddTransition(k + 1, k, mu);
  }
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  Real denom = (1 - std::pow(rho, kCapacity + 1)) / (1 - rho);
  for (int k = 0; k <= kCapacity; ++k) {
    Real expect = std::pow(rho, k) / denom;
    EXPECT_NEAR(static_cast<double>((*pi)[k]), static_cast<double>(expect),
                1e-14)
        << "state " << k;
  }
}

TEST(MarkovChain, IndependentNodesFactorize) {
  // Two independent up/down nodes as one chain: pi(both up) = p^2.
  const Real l = 1.0L, m = 19.0L;
  MarkovChain chain;
  // State = (up count); aggregate chain with rates scaled by counts.
  size_t s2 = chain.AddState("2up");
  size_t s1 = chain.AddState("1up");
  size_t s0 = chain.AddState("0up");
  chain.AddTransition(s2, s1, 2 * l);
  chain.AddTransition(s1, s0, l);
  chain.AddTransition(s1, s2, m);
  chain.AddTransition(s0, s1, 2 * m);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  Real p = m / (l + m);
  EXPECT_NEAR(static_cast<double>((*pi)[s2]), static_cast<double>(p * p),
              1e-15);
  EXPECT_NEAR(static_cast<double>((*pi)[s0]),
              static_cast<double>((1 - p) * (1 - p)), 1e-15);
}

TEST(MarkovChain, AccumulatesParallelTransitions) {
  MarkovChain chain;
  size_t a = chain.AddState("a");
  size_t b = chain.AddState("b");
  chain.AddTransition(a, b, 1.0L);
  chain.AddTransition(a, b, 2.0L);  // Accumulates to 3.
  chain.AddTransition(b, a, 3.0L);
  EXPECT_EQ(chain.ExitRate(a), 3.0L);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR(static_cast<double>((*pi)[a]), 0.5, 1e-15);
}

TEST(MarkovChain, SelfLoopsIgnored) {
  MarkovChain chain;
  size_t a = chain.AddState("a");
  size_t b = chain.AddState("b");
  chain.AddTransition(a, a, 100.0L);
  chain.AddTransition(a, b, 1.0L);
  chain.AddTransition(b, a, 1.0L);
  EXPECT_EQ(chain.ExitRate(a), 1.0L);
}

TEST(MarkovChain, EmptyChainRejected) {
  MarkovChain chain;
  EXPECT_FALSE(chain.StationaryDistribution().ok());
}

TEST(MarkovChain, LabelsPreserved) {
  MarkovChain chain;
  size_t i = chain.AddState("A(9,9,0)");
  EXPECT_EQ(chain.Label(i), "A(9,9,0)");
}

}  // namespace
}  // namespace dcp::analysis
