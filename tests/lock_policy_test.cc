// Lock-conflict policies (the paper defers deadlock handling to [2]):
// refuse-and-retry (default) vs wound-wait. Both are deadlock-free;
// wound-wait additionally guarantees the oldest operation never starves.

#include <gtest/gtest.h>

#include "protocol/cluster.h"

namespace dcp::protocol {
namespace {

ClusterOptions Options(LockPolicy policy) {
  ClusterOptions opts;
  opts.num_nodes = 9;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = 71;
  opts.initial_value = {0};
  opts.node_options.lock_policy = policy;
  opts.latency = net::LatencyModel{1.0, 0.0};
  return opts;
}

TEST(WoundWait, OlderOperationWoundsYoungerHolder) {
  Cluster cluster(Options(LockPolicy::kWoundWait));
  // The YOUNGER operation grabs locks first; then an OLDER one (earlier
  // start time) arrives and must wound it. Simulate by sending raw lock
  // requests with explicit seniority.
  auto lock = [&](NodeId node, storage::LockOwner owner,
                  sim::Time started) {
    auto req = std::make_shared<LockRequest>();
    req->owner = owner;
    req->mode = LockMode::kExclusive;
    req->op_started = started;
    return cluster.node(node).HandleRequest(owner.coordinator, msg::kLock,
                                            req);
  };
  cluster.RunFor(100);  // Now = 100.
  storage::LockOwner young{1, 10};
  storage::LockOwner old{2, 11};
  ASSERT_TRUE(lock(5, young, 90).ok());   // Young op (started later)...
  // ...wait: started 90 < 95? Seniority = smaller start time. Make the
  // "young" one start at 95 and the "old" one at 90.
  cluster.node(5).store().Unlock(young);
  ASSERT_TRUE(lock(5, young, 95).ok());
  // Older operation (started 90) wounds the younger holder.
  EXPECT_TRUE(lock(5, old, 90).ok());
  EXPECT_TRUE(cluster.node(5).store().HoldsLock(old));
  EXPECT_FALSE(cluster.node(5).store().HoldsLock(young));
}

TEST(WoundWait, YoungerRequesterIsRefused) {
  Cluster cluster(Options(LockPolicy::kWoundWait));
  cluster.RunFor(100);
  auto lock = [&](NodeId node, storage::LockOwner owner,
                  sim::Time started) {
    auto req = std::make_shared<LockRequest>();
    req->owner = owner;
    req->mode = LockMode::kExclusive;
    req->op_started = started;
    return cluster.node(node).HandleRequest(owner.coordinator, msg::kLock,
                                            req);
  };
  storage::LockOwner old{1, 10};
  storage::LockOwner young{2, 11};
  ASSERT_TRUE(lock(5, old, 90).ok());
  auto refused = lock(5, young, 95);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsConflict());
  EXPECT_TRUE(cluster.node(5).store().HoldsLock(old));
}

TEST(WoundWait, StagedHoldersAreNeverWounded) {
  Cluster cluster(Options(LockPolicy::kWoundWait));
  cluster.RunFor(100);
  // Stage a transaction at node 5 (prepared = committing; untouchable).
  storage::LockOwner committing{1, 10};
  auto lock_req = std::make_shared<LockRequest>();
  lock_req->owner = committing;
  lock_req->mode = LockMode::kExclusive;
  lock_req->op_started = 95;
  ASSERT_TRUE(cluster.node(5).HandleRequest(1, msg::kLock, lock_req).ok());
  auto prepare = std::make_shared<PrepareRequest>();
  prepare->owner = committing;
  ObjectAction act;
  act.mark_stale = true;
  act.desired_version = 5;
  prepare->action.objects.push_back(act);
  prepare->participants = NodeSet({5});
  ASSERT_TRUE(cluster.node(5).HandleRequest(1, msg::kPrepare, prepare).ok());

  // An older operation cannot wound it.
  auto older = std::make_shared<LockRequest>();
  older->owner = storage::LockOwner{2, 11};
  older->mode = LockMode::kExclusive;
  older->op_started = 50;
  auto refused = cluster.node(5).HandleRequest(2, msg::kLock, older);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(cluster.node(5).store().HoldsLock(committing));
}

TEST(WoundWait, EndToEndContentionStillSerializable) {
  // Many concurrent writers under wound-wait: everything must stay 1SR
  // and the replicas consistent.
  Cluster cluster(Options(LockPolicy::kWoundWait));
  int done = 0, committed = 0;
  for (int i = 0; i < 20; ++i) {
    cluster.simulator().Schedule(i * 2.0, [&cluster, &done, &committed, i] {
      cluster.Write(static_cast<NodeId>(i % 9), Update::Partial(0, {uint8_t(i)}),
                    [&](Result<WriteOutcome> r) {
                      ++done;
                      if (r.ok()) ++committed;
                    });
    });
  }
  while (done < 20 && cluster.simulator().Step()) {
  }
  cluster.RunFor(5000);
  EXPECT_GT(committed, 0);
  EXPECT_TRUE(cluster.Quiescent());
  EXPECT_TRUE(cluster.CheckHistory().ok()) << cluster.CheckHistory().ToString();
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
}

TEST(WoundWait, WoundedWriterRetriesAndSucceeds) {
  // A wounded coordinator's 2PC prepare fails (its lock is gone); the
  // retry machinery must recover, end-to-end.
  Cluster cluster(Options(LockPolicy::kWoundWait));
  int committed = 0;
  int done = 0;
  // Two writes racing on overlapping quorums, staggered so the second
  // (younger) acquires some locks before the older one's requests land.
  for (NodeId coord : {0, 4}) {
    cluster.simulator().Schedule(coord == 0 ? 0.0 : 0.1,
                                 [&cluster, &done, &committed, coord] {
      cluster.Write(coord, Update::Partial(0, {uint8_t(coord)}),
                    [&](Result<WriteOutcome> r) {
                      ++done;
                      if (r.ok()) ++committed;
                    });
    });
  }
  while (done < 2 && cluster.simulator().Step()) {
  }
  EXPECT_GE(committed, 1);
  // Whoever failed can retry and succeed now.
  auto w = cluster.WriteSyncRetry(7, Update::Partial(0, {99}));
  EXPECT_TRUE(w.ok());
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(RefusePolicy, IgnoresSeniority) {
  Cluster cluster(Options(LockPolicy::kRefuse));
  cluster.RunFor(100);
  auto lock = [&](NodeId node, storage::LockOwner owner,
                  sim::Time started) {
    auto req = std::make_shared<LockRequest>();
    req->owner = owner;
    req->mode = LockMode::kExclusive;
    req->op_started = started;
    return cluster.node(node).HandleRequest(owner.coordinator, msg::kLock,
                                            req);
  };
  storage::LockOwner young{1, 10};
  ASSERT_TRUE(lock(5, young, 95).ok());
  // Even a much older requester is refused under kRefuse.
  auto refused = lock(5, storage::LockOwner{2, 11}, 1);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(cluster.node(5).store().HoldsLock(young));
}

}  // namespace
}  // namespace dcp::protocol
