#include <gtest/gtest.h>

#include <vector>

#include "protocol/cluster.h"
#include "storage/versioned_object.h"

namespace dcp::protocol {
namespace {

std::vector<uint8_t> Bytes(const char* s) {
  return std::vector<uint8_t>(s, s + std::string(s).size());
}

ClusterOptions BasicOptions(uint32_t n = 9) {
  ClusterOptions opts;
  opts.num_nodes = n;
  opts.coterie = CoterieKind::kGrid;
  opts.seed = 42;
  opts.initial_value = Bytes("initial!");
  return opts;
}

TEST(ProtocolBasic, SingleWriteAndRead) {
  Cluster cluster(BasicOptions());
  auto w = cluster.WriteSync(0, Update::Partial(0, Bytes("hello")));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->version, 1u);

  auto r = cluster.ReadSync(3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version, 1u);
  // Partial write patches bytes in place over "initial!".
  EXPECT_EQ(r->data, Bytes("helloal!"));

  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolBasic, SequentialWritesIncrementVersions) {
  Cluster cluster(BasicOptions());
  for (int i = 1; i <= 10; ++i) {
    auto w = cluster.WriteSyncRetry(static_cast<NodeId>(i % 9),
                                    Update::Partial(0, {uint8_t(i)}));
    ASSERT_TRUE(w.ok()) << "write " << i << ": " << w.status().ToString();
    EXPECT_EQ(w->version, static_cast<Version>(i));
  }
  auto r = cluster.ReadSync(5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version, 10u);
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolBasic, PartialWritesMarkNonQuorumReplicasStale) {
  Cluster cluster(BasicOptions());
  auto w = cluster.WriteSync(0, Update::Partial(0, Bytes("x")));
  ASSERT_TRUE(w.ok());
  // Some replicas were in the quorum but not good (they all started
  // current, so actually all quorum members are good on the first write).
  // After several writes from the same coordinator, replicas outside its
  // quorums fall behind but are only marked stale once touched.
  uint32_t stale = 0;
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i).store().stale()) ++stale;
  }
  // First write: all locked replicas were current, so no stale marks yet.
  EXPECT_EQ(stale, 0u);
}

TEST(ProtocolBasic, StaleReplicasCatchUpViaPropagation) {
  Cluster cluster(BasicOptions());
  // Writes from different coordinators touch different quorums; replicas
  // that respond with an old version get marked stale and then caught up
  // asynchronously by the propagation protocol.
  for (int i = 0; i < 6; ++i) {
    auto w = cluster.WriteSyncRetry(static_cast<NodeId>(i),
                                    Update::Partial(static_cast<uint64_t>(i),
                                                    {uint8_t('a' + i)}));
    ASSERT_TRUE(w.ok()) << w.status().ToString();
  }
  // Let propagation drain.
  cluster.RunFor(2000);
  EXPECT_TRUE(cluster.Quiescent());
  EXPECT_TRUE(cluster.CheckReplicaConsistency().ok());
  // Every replica that was ever marked stale should be current again.
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    EXPECT_FALSE(cluster.node(i).store().stale())
        << "node " << i << " still stale: "
        << cluster.node(i).store().DebugString();
  }
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolBasic, ReadsSeeLatestCommittedWrite) {
  Cluster cluster(BasicOptions());
  for (int i = 0; i < 5; ++i) {
    auto w = cluster.WriteSyncRetry(static_cast<NodeId>(2 * i % 9),
                                    Update::Partial(0, {uint8_t(i)}));
    ASSERT_TRUE(w.ok());
    auto r = cluster.ReadSyncRetry(static_cast<NodeId>((2 * i + 5) % 9));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->version, w->version);
    EXPECT_EQ(r->data[0], uint8_t(i));
  }
  EXPECT_TRUE(cluster.CheckHistory().ok());
}

TEST(ProtocolBasic, EpochInvariantsHoldInitially) {
  Cluster cluster(BasicOptions());
  EXPECT_TRUE(cluster.CheckEpochInvariants().ok());
  auto s = cluster.CheckEpochSync(0);
  EXPECT_TRUE(s.ok()) << s.ToString();  // No failures: no change needed.
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    EXPECT_EQ(cluster.node(i).store().epoch_number(), 0u);
  }
}

}  // namespace
}  // namespace dcp::protocol
