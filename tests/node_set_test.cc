#include "util/node_set.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace dcp {
namespace {

TEST(NodeSet, BasicInsertEraseContains) {
  NodeSet s;
  EXPECT_TRUE(s.Empty());
  s.Insert(3);
  s.Insert(100);
  s.Insert(3);  // Duplicate.
  EXPECT_EQ(s.Size(), 2u);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(100));
  EXPECT_FALSE(s.Contains(4));
  s.Erase(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Size(), 1u);
  s.Erase(3);  // Idempotent.
  EXPECT_EQ(s.Size(), 1u);
}

TEST(NodeSet, UniverseAndIteration) {
  NodeSet s = NodeSet::Universe(5);
  std::vector<NodeId> got;
  for (NodeId n : s) got.push_back(n);
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.ToVector(), got);
}

TEST(NodeSet, OrderedIndexMatchesSortedPosition) {
  NodeSet s({7, 2, 90, 41});
  EXPECT_EQ(s.OrderedIndex(2), 0);
  EXPECT_EQ(s.OrderedIndex(7), 1);
  EXPECT_EQ(s.OrderedIndex(41), 2);
  EXPECT_EQ(s.OrderedIndex(90), 3);
  EXPECT_LT(s.OrderedIndex(5), 0);  // Non-member.
}

TEST(NodeSet, NthMemberInverseOfOrderedIndex) {
  NodeSet s({7, 2, 90, 41, 64, 65, 66, 128});
  for (uint32_t i = 0; i < s.Size(); ++i) {
    NodeId n = s.NthMember(i);
    EXPECT_EQ(s.OrderedIndex(n), static_cast<int64_t>(i));
  }
  EXPECT_EQ(s.NthMember(s.Size()), kInvalidNode);
}

TEST(NodeSet, SetAlgebra) {
  NodeSet a({1, 2, 3, 64});
  NodeSet b({3, 64, 65});
  EXPECT_EQ(a.Union(b), NodeSet({1, 2, 3, 64, 65}));
  EXPECT_EQ(a.Intersection(b), NodeSet({3, 64}));
  EXPECT_EQ(a.Difference(b), NodeSet({1, 2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(NodeSet({1}).Intersects(NodeSet({2})));
  EXPECT_TRUE(NodeSet({3, 64}).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(NodeSet{}.IsSubsetOf(a));
}

TEST(NodeSet, EqualityIgnoresCapacity) {
  NodeSet a({1});
  NodeSet b({1, 200});
  b.Erase(200);  // Shrinks trailing words.
  EXPECT_EQ(a, b);
  NodeSet c({1, 200});
  EXPECT_NE(a, c);
}

TEST(NodeSet, OrderingIsDeterministic) {
  NodeSet a({1});
  NodeSet b({2});
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_FALSE(a < a);
}

TEST(NodeSet, ToStringFormat) {
  EXPECT_EQ(NodeSet({5, 1, 9}).ToString(), "{1,5,9}");
  EXPECT_EQ(NodeSet{}.ToString(), "{}");
}

TEST(NodeSet, RandomizedAgainstStdSet) {
  Rng rng(99);
  NodeSet s;
  std::set<NodeId> ref;
  for (int i = 0; i < 2000; ++i) {
    NodeId n = static_cast<NodeId>(rng.Uniform(300));
    if (rng.Bernoulli(0.6)) {
      s.Insert(n);
      ref.insert(n);
    } else {
      s.Erase(n);
      ref.erase(n);
    }
  }
  EXPECT_EQ(s.Size(), ref.size());
  std::vector<NodeId> expect(ref.begin(), ref.end());
  EXPECT_EQ(s.ToVector(), expect);
  for (NodeId n = 0; n < 300; ++n) {
    EXPECT_EQ(s.Contains(n), ref.count(n) > 0) << n;
  }
}

}  // namespace
}  // namespace dcp
