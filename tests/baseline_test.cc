#include <gtest/gtest.h>

#include "baseline/dynamic_voting.h"
#include "baseline/static_protocol.h"
#include "protocol/cluster.h"

namespace dcp::baseline {
namespace {

using protocol::Cluster;
using protocol::ClusterOptions;
using protocol::CoterieKind;
using protocol::ReadOutcome;
using protocol::WriteOutcome;

ClusterOptions Options(CoterieKind kind, uint32_t n = 9) {
  ClusterOptions opts;
  opts.num_nodes = n;
  opts.coterie = kind;
  opts.seed = 31;
  opts.initial_value = {'i'};
  return opts;
}

Result<WriteOutcome> StaticWriteSync(Cluster& cluster, NodeId coord,
                                     std::vector<uint8_t> value) {
  bool fired = false;
  Result<WriteOutcome> result = Status::Internal("unset");
  StartStaticWrite(&cluster.node(coord), std::move(value),
                   [&](Result<WriteOutcome> r) {
                     fired = true;
                     result = std::move(r);
                   });
  while (!fired && cluster.simulator().Step()) {
  }
  return result;
}

Result<ReadOutcome> StaticReadSync(Cluster& cluster, NodeId coord) {
  bool fired = false;
  Result<ReadOutcome> result = Status::Internal("unset");
  StartStaticRead(&cluster.node(coord), [&](Result<ReadOutcome> r) {
    fired = true;
    result = std::move(r);
  });
  while (!fired && cluster.simulator().Step()) {
  }
  return result;
}

Result<WriteOutcome> DvWriteSync(Cluster& cluster, NodeId coord,
                                 std::vector<uint8_t> value) {
  bool fired = false;
  Result<WriteOutcome> result = Status::Internal("unset");
  StartDynamicVotingWrite(&cluster.node(coord), std::move(value),
                          [&](Result<WriteOutcome> r) {
                            fired = true;
                            result = std::move(r);
                          });
  while (!fired && cluster.simulator().Step()) {
  }
  return result;
}

Result<ReadOutcome> DvReadSync(Cluster& cluster, NodeId coord) {
  bool fired = false;
  Result<ReadOutcome> result = Status::Internal("unset");
  StartDynamicVotingRead(&cluster.node(coord), [&](Result<ReadOutcome> r) {
    fired = true;
    result = std::move(r);
  });
  while (!fired && cluster.simulator().Step()) {
  }
  return result;
}

TEST(StaticProtocol, WriteThenReadGrid) {
  Cluster cluster(Options(CoterieKind::kGrid));
  auto w = StaticWriteSync(cluster, 0, {'a'});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->version, 1u);
  auto r = StaticReadSync(cluster, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, 1u);
  EXPECT_EQ(r->data, std::vector<uint8_t>{'a'});
}

TEST(StaticProtocol, SequentialWritesFromDifferentQuorums) {
  Cluster cluster(Options(CoterieKind::kGrid));
  for (int i = 1; i <= 8; ++i) {
    auto w = StaticWriteSync(cluster, static_cast<NodeId>(i % 9),
                             {uint8_t(i)});
    ASSERT_TRUE(w.ok()) << i << ": " << w.status().ToString();
    EXPECT_EQ(w->version, static_cast<protocol::Version>(i));
  }
  auto r = StaticReadSync(cluster, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, std::vector<uint8_t>{8});
}

TEST(StaticProtocol, FailsWhenQuorumMemberDown) {
  // The defining weakness: the static protocol cannot adapt. With a full
  // grid column down, every write quorum is broken.
  Cluster cluster(Options(CoterieKind::kGrid));
  // 3x3 grid columns are {0,3,6},{1,4,7},{2,5,8}; kill column 1 entirely.
  cluster.Crash(1);
  cluster.Crash(4);
  cluster.Crash(7);
  auto w = StaticWriteSync(cluster, 0, {'x'});
  EXPECT_FALSE(w.ok());
  auto r = StaticReadSync(cluster, 0);
  EXPECT_FALSE(r.ok());
}

TEST(StaticProtocol, SurvivesFailuresOutsideTheQuorum) {
  Cluster cluster(Options(CoterieKind::kGrid));
  cluster.Crash(8);  // Retry machinery redraws quorums via op ids.
  bool any_ok = false;
  for (int attempt = 0; attempt < 8 && !any_ok; ++attempt) {
    any_ok = StaticWriteSync(cluster, 0, {'y'}).ok();
  }
  EXPECT_TRUE(any_ok);
}

TEST(StaticProtocol, MajorityVariant) {
  Cluster cluster(Options(CoterieKind::kMajority));
  ASSERT_TRUE(StaticWriteSync(cluster, 0, {'m'}).ok());
  // Majority tolerates any 4 of 9 down — but the static protocol draws
  // quorums blindly (rotation by operation id), so only the draw starting
  // at node 0 hits the unique surviving majority; retry until it does.
  for (NodeId v = 5; v < 9; ++v) cluster.Crash(v);
  bool ok = false;
  for (int attempt = 0; attempt < 60 && !ok; ++attempt) {
    ok = StaticWriteSync(cluster, 0, {'n'}).ok();
  }
  EXPECT_TRUE(ok);
  cluster.Crash(4);  // Now only 4 of 9 up: no majority.
  EXPECT_FALSE(StaticWriteSync(cluster, 0, {'o'}).ok());
}

TEST(DynamicVoting, WriteUpdatesSitesList) {
  Cluster cluster(Options(CoterieKind::kMajority));
  auto w = DvWriteSync(cluster, 0, {'1'});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  // All respondents got the value and the full update-sites list.
  for (NodeId i = 0; i < 9; ++i) {
    EXPECT_EQ(cluster.node(i).store().version(), 1u);
    EXPECT_EQ(cluster.node(i).store().epoch_list(), NodeSet::Universe(9));
  }
}

TEST(DynamicVoting, ShrinksWithSequentialFailures) {
  Cluster cluster(Options(CoterieKind::kMajority));
  ASSERT_TRUE(DvWriteSync(cluster, 0, {'a'}).ok());
  // Crash 5 nodes one at a time, writing in between: update-sites shrink
  // to the survivors each time, so a bare majority of the *previous*
  // group keeps sufficing. A static majority of 9 would be dead at 4 up.
  std::vector<uint8_t> expect{'a'};
  for (NodeId victim = 8; victim >= 4; --victim) {
    cluster.Crash(victim);
    expect[0] = static_cast<uint8_t>('a' + (9 - victim));
    auto w = DvWriteSync(cluster, 0, expect);
    ASSERT_TRUE(w.ok()) << "victim " << int(victim) << ": "
                        << w.status().ToString();
  }
  EXPECT_EQ(cluster.UpNodes().Size(), 4u);
  auto r = DvReadSync(cluster, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, expect);
  // Update sites now only the 4 survivors.
  EXPECT_EQ(cluster.node(0).store().epoch_list(), NodeSet({0, 1, 2, 3}));
}

TEST(DynamicVoting, MinoritySideOfPartitionFails) {
  Cluster cluster(Options(CoterieKind::kMajority));
  ASSERT_TRUE(DvWriteSync(cluster, 0, {'a'}).ok());
  cluster.Partition({NodeSet({0, 1, 2, 3, 4}), NodeSet({5, 6, 7, 8})});
  auto w_major = DvWriteSync(cluster, 0, {'b'});
  EXPECT_TRUE(w_major.ok());
  auto w_minor = DvWriteSync(cluster, 5, {'X'});
  EXPECT_FALSE(w_minor.ok());

  // After the majority side shrank to {0..4}, healing alone does not let
  // the old minority write until it rejoins via a new distinguished
  // partition (the next write from the majority group absorbs them).
  cluster.Heal();
  auto w_rejoin = DvWriteSync(cluster, 0, {'c'});
  EXPECT_TRUE(w_rejoin.ok());
  EXPECT_EQ(cluster.node(7).store().version(), 3u);
  auto r = DvReadSync(cluster, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, std::vector<uint8_t>{'c'});
}

TEST(DynamicVoting, CannotRecoverFromTotalQuorumLossUntilSitesReturn) {
  Cluster cluster(Options(CoterieKind::kMajority));
  ASSERT_TRUE(DvWriteSync(cluster, 0, {'a'}).ok());
  // Simultaneous loss of 5 of 9: the update-sites majority is gone.
  for (NodeId v = 4; v < 9; ++v) cluster.Crash(v);
  EXPECT_FALSE(DvWriteSync(cluster, 0, {'b'}).ok());
  // One site back -> 5 of 9 sites -> majority again.
  cluster.Recover(4);
  auto w = DvWriteSync(cluster, 0, {'c'});
  EXPECT_TRUE(w.ok()) << w.status().ToString();
}

}  // namespace
}  // namespace dcp::baseline
