#include "util/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace dcp {
namespace {

TEST(Matrix, IdentityMultiply) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Matrix prod = a.Multiply(Matrix::Identity(2));
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_EQ(prod.At(i, j), a.At(i, j));
  }
}

TEST(SolveLinearSystem, Solves2x2) {
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 3;
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(static_cast<double>((*x)[0]), 1.0, 1e-12);
  EXPECT_NEAR(static_cast<double>((*x)[1]), 3.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  auto x = SolveLinearSystem(a, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(static_cast<double>((*x)[0]), 3.0, 1e-15);
  EXPECT_NEAR(static_cast<double>((*x)[1]), 2.0, 1e-15);
}

TEST(SolveLinearSystem, DetectsSingular) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  auto x = SolveLinearSystem(a, {1, 2});
  EXPECT_FALSE(x.ok());
}

TEST(SolveLinearSystem, DimensionMismatch) {
  Matrix a(2, 3);
  auto x = SolveLinearSystem(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolveLinearSystem, RandomizedRoundTrip) {
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    size_t n = 1 + rng.Uniform(25);
    Matrix a(n, n);
    std::vector<Real> x_true(n);
    for (size_t i = 0; i < n; ++i) {
      x_true[i] = static_cast<Real>(rng.NextDouble() * 10 - 5);
      for (size_t j = 0; j < n; ++j) {
        a.At(i, j) = static_cast<Real>(rng.NextDouble() * 2 - 1);
      }
      a.At(i, i) += static_cast<Real>(n);  // Diagonal dominance.
    }
    std::vector<Real> b(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b[i] += a.At(i, j) * x_true[j];
    }
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(static_cast<double>((*x)[i]),
                  static_cast<double>(x_true[i]), 1e-10);
    }
  }
}

}  // namespace
}  // namespace dcp
